"""Extension — heterogeneous links: a far-away maker.

The paper's motivation is *inter-company* integration: the maker's DB
typically sits in another network entirely. Model that with pairwise
latencies (retailer↔retailer 1 unit, anything↔maker 10 units) and
measure update latency. Centralized pays the long haul on *every*
update; the proposal pays it only on the rare AV transfer that actually
needs the maker — the latency gap widens exactly as the paper's
real-time argument predicts.
"""

from conftest import once

from repro.baselines.centralized import CENTER, CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.experiments import make_paper_trace
from repro.metrics.latency import summarize
from repro.metrics.report import text_table
from repro.net.latency import ConstantLatency, PairwiseLatency
from repro.workload.driver import run_open, split_by_site

FAR = 10.0
NEAR = 1.0
N_UPDATES = 600


def _far_maker_model(far_name: str) -> PairwiseLatency:
    model = PairwiseLatency(ConstantLatency(NEAR))
    for other in ("site0", "site1", "site2", CENTER):
        if other != far_name:
            model.set(far_name, other, ConstantLatency(FAR))
    return model


def _run(seed=3):
    trace = make_paper_trace(N_UPDATES, seed, n_items=10)
    per_site = split_by_site(trace)
    config = paper_config(n_items=10, seed=seed)

    proposal = DistributedSystem.build(config)
    proposal.network.latency = _far_maker_model("site0")
    results_p = run_open(proposal, per_site, interarrival=5.0)

    central = CentralizedSystem(config)
    central.network.latency = _far_maker_model(CENTER)
    results_c = run_open(central, per_site, interarrival=5.0)

    return (
        summarize([r.latency for r in results_p if r.committed]),
        summarize([r.latency for r in results_c if r.committed]),
    )


def bench_heterogeneous_latency(benchmark, save_result):
    prop, conv = once(benchmark, _run)
    rows = [
        ["proposal", prop.count, round(prop.mean, 2), prop.p50, prop.p90, prop.max],
        ["centralized", conv.count, round(conv.mean, 2), conv.p50, conv.p90, conv.max],
    ]
    save_result(
        "heterogeneous_latency",
        text_table(
            ["system", "n", "mean", "p50", "p90", "max"],
            rows,
            title=(
                f"Extension — far-away maker (maker links {FAR:g}, "
                f"local links {NEAR:g})"
            ),
        )
        + f"\nmean speedup: {conv.mean / prop.mean:.1f}x",
    )

    # Centralized pays the long haul on every update.
    assert conv.p50 == 2 * FAR
    # The proposal's median update is still free.
    assert prop.p50 == 0.0
    # The gap is wider than with homogeneous links (6.3x there).
    assert conv.mean / prop.mean > 8
