"""Extension — the comparison in wire bytes, not just message counts.

The paper's correspondence metric treats every message as equal; AV
transfer messages are slightly fatter than a centralized update request
(they carry amounts and piggybacked belief state). This bench re-runs
the Fig. 6 comparison with a deterministic wire-size model to confirm
the headline survives the change of units — it does, comfortably,
because the proposal's win comes from sending *nothing at all* for most
updates.
"""

from conftest import once

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.experiments import make_paper_trace, run_counted
from repro.metrics.report import text_table

N_UPDATES = 1000


def _run(seed=0, n_items=10):
    trace = make_paper_trace(N_UPDATES, seed, n_items=n_items)
    config = paper_config(n_items=n_items, seed=seed, count_bytes=True)

    proposal_system = DistributedSystem.build(config)
    run_counted(proposal_system, trace, "proposal", checkpoints=[N_UPDATES])

    conventional_system = CentralizedSystem(config)
    run_counted(conventional_system, trace, "conventional", checkpoints=[N_UPDATES])
    return proposal_system.stats, conventional_system.stats


def bench_bytes(benchmark, save_result):
    prop_stats, conv_stats = once(benchmark, _run)

    rows = [
        ["proposal", prop_stats.sent_total, prop_stats.bytes_total,
         round(prop_stats.bytes_total / N_UPDATES, 1)],
        ["conventional", conv_stats.sent_total, conv_stats.bytes_total,
         round(conv_stats.bytes_total / N_UPDATES, 1)],
    ]
    reduction = 1 - prop_stats.bytes_total / conv_stats.bytes_total
    save_result(
        "bytes",
        text_table(
            ["system", "messages", "wire bytes", "bytes / update"],
            rows,
            title="Extension — Fig. 6 re-measured in wire bytes",
        )
        + f"\nbyte reduction vs conventional: {reduction:.1%}",
    )

    # The proposal's messages are individually fatter...
    prop_per_msg = prop_stats.bytes_total / prop_stats.sent_total
    conv_per_msg = conv_stats.bytes_total / conv_stats.sent_total
    assert prop_per_msg > conv_per_msg
    # ...but the headline still holds in bytes.
    assert reduction > 0.5
