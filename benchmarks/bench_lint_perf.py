"""Perf gate for the consolidated static suite.

PR 7 moved the lint rules onto the shared protoflow engine so that lint
plus all five protocol-flow checks are ONE parse of the tree, and
retired the per-file ``message-handlers`` rule in favour of the
registry checks. The deal only holds if the combined pass is not slower
than the old standalone lint:

* **baseline** — the pre-consolidation suite: the per-file
  :class:`~repro.analysis.lint.visitor.Linter` running today's rules
  plus a faithful reimplementation of the retired ``message-handlers``
  rule (which applied to *every* file, so the old lint walked the full
  ``tests/`` tree as well);
* **candidate** — ``index_project`` over the same lint scope with the
  same five surviving rules AND the full protocol IR + registry checks
  on top.

Best-of-``ROUNDS`` each to shave scheduler noise; the combined pass
must come in at or under the old lint's time (``MAX_RATIO``).
"""

import ast
import time
from pathlib import Path
from typing import List, Set, Tuple

from repro.analysis.lint import Linter, default_rules
from repro.analysis.lint.visitor import FileContext, LintFinding, Rule
from repro.analysis.lint.visitor import in_tests_or_benchmarks
from repro.analysis.protoflow import run_checks
from repro.analysis.protoflow.ir import index_project
from repro.net.protocol import PROTOCOL

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_SCOPE = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
FLOW_SCOPE = [str(REPO_ROOT / "src")]

#: the combined pass (lint + whole-program flow checks, one parse) may
#: not be slower than the old lint suite alone
MAX_RATIO = 1.0

ROUNDS = 5


class OldMessageHandlerRule(Rule):
    """The retired per-file rule, reproduced for an honest baseline.

    Replaced in PR 7 by protoflow's ``proto-missing-handler`` /
    ``proto-unregistered-kind`` registry checks. Note ``applies_to`` is
    the inherited always-True: this rule collected registrations from
    tests as well, which is what forced the old lint to walk the whole
    ``tests/`` tree.
    """

    name = "message-handlers"
    nodes = (ast.Call,)

    def __init__(self) -> None:
        self.registered: Set[str] = set()
        self.pending: List[Tuple[str, int, int, str]] = []

    @staticmethod
    def _const_str(node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr == "on" and node.args:
            kind = self._const_str(node.args[0])
            if kind is not None:
                self.registered.add(kind)
        elif attr in ("send", "request") and len(node.args) >= 2:
            kind = self._const_str(node.args[1])
            if kind is None or kind.endswith(".reply"):
                return
            if in_tests_or_benchmarks(ctx.path):
                return
            if ctx.suppressed(node.lineno, self.name):
                return
            self.pending.append(
                (ctx.path, node.lineno, node.col_offset, kind)
            )

    def finish(self) -> List[LintFinding]:
        return [
            LintFinding(
                rule=self.name, path=path, line=line, col=col,
                message=f"message kind {kind!r} has no handler",
            )
            for path, line, col, kind in self.pending
            if kind not in self.registered
        ]


def _best(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _old_lint():
    Linter([*default_rules(), OldMessageHandlerRule()]).run(LINT_SCOPE)


def _combined_pass():
    _, ir = index_project(
        LINT_SCOPE, rules=default_rules(), flow_paths=FLOW_SCOPE
    )
    run_checks(ir, PROTOCOL)


def bench_combined_static_pass_not_slower(benchmark, save_result):
    legacy = _best(_old_lint)
    t0 = time.perf_counter()
    benchmark.pedantic(_combined_pass, rounds=1, iterations=1)
    combined = min(time.perf_counter() - t0, _best(_combined_pass))

    ratio = combined / legacy
    report = "\n".join([
        "scope                  : src + tests lint, src flow checks",
        f"old lint (best/{ROUNDS})     : {legacy * 1e3:.1f} ms",
        f"combined pass (best/{ROUNDS}) : {combined * 1e3:.1f} ms",
        f"ratio                  : {ratio:.2f}x (bound {MAX_RATIO:.2f}x)",
    ])
    save_result("lint_perf", report)
    assert ratio <= MAX_RATIO, report
