"""Fig. 6 — number of updates vs number of correspondences.

Paper claims validated here:
  * the proposal cuts correspondences by ≈75% vs the conventional
    centralized approach (we accept 55-95%: the exact value depends on
    the item count the scan lost);
  * "most of the update is completed within the local site";
  * the conventional line is linear at ~1 correspondence/update.
"""

from conftest import once

from repro.experiments import run_fig6
from repro.metrics.correspondence import is_monotonic


def bench_fig6(benchmark, save_result):
    result = once(benchmark, run_fig6, n_updates=1000, seed=0, n_items=10)
    save_result("fig6", result.render())

    # Shape assertions (the paper's stated findings).
    assert 0.55 <= result.reduction <= 0.95, (
        f"reduction {result.reduction:.1%} out of the paper's band"
    )
    assert result.local_ratio > 0.5, "most updates must complete locally"

    conv = result.conventional_series
    assert abs(conv.slope() - 1.0) < 1e-9, "conventional is 1 corr/update"

    prop = result.proposal_series
    assert is_monotonic(prop) and is_monotonic(conv)
    assert prop.final()[1] < conv.final()[1]


def bench_fig6_multiseed(benchmark, save_result):
    """Stability across seeds: the ordering never flips."""

    def run_all():
        return [run_fig6(n_updates=600, seed=s, n_items=10) for s in range(5)]

    results = once(benchmark, run_all)
    lines = ["seed  reduction  local_ratio"]
    for seed, r in enumerate(results):
        lines.append(f"{seed:4d}  {r.reduction:9.1%}  {r.local_ratio:11.1%}")
        assert r.reduction > 0.4, f"seed {seed}: win vanished"
        assert r.local_ratio > 0.5
    save_result("fig6_multiseed", "\n".join(lines))
