#!/usr/bin/env python
"""End-to-end benchmark harness for the sharded experiment runner.

Runs the fig6 / table1 / chaos sweep grids under both **sequential**
(``shards=1``, fully in-process) and **sharded** execution, verifies the
two produce byte-identical results, and emits one JSON report per grid
(``benchmarks/results/BENCH_fig6.json`` etc.) with:

* wall time per mode,
* simulation events per second,
* sharded-over-sequential speedup,
* peak RSS (self + children),
* a host *calibration score* (pure-python spin loop) so throughput can
  be compared across machines of different speeds.

The ``--check-baseline`` flag turns the harness into a regression gate:
the current sequential throughput is compared against the committed
baseline JSON, **normalised by the calibration score**, and the run
fails if it regressed by more than the tolerance (default 10%, override
with ``--tolerance`` or ``REPRO_BENCH_TOLERANCE``). CI runs
``python benchmarks/harness.py --small --check-baseline``.

Note on speedup: the sharded mode pays per-worker process start-up, so
on small grids (and especially on single-core machines — ``cpu_count``
is recorded in the JSON) the speedup can be < 1. It approaches the
shard count as grids grow and cores are available.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf import build_grid, run_sweep  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: grids the harness covers, keyed by the experiment label used in the
#: BENCH_<label>.json filename
BENCH_GRIDS = {
    "fig6": ("fig6-small", "fig6"),
    "table1": ("table1-small", "table1"),
    "chaos": ("chaos-small", "chaos"),
}

_CALIBRATION_LOOPS = 2_000_000


def calibrate() -> float:
    """Host speed score in kops/s from a fixed pure-python spin loop.

    Dividing measured throughput by this score gives a machine-neutral
    figure, which is what the baseline gate compares — so a slower CI
    runner doesn't read as a code regression.
    """
    acc = 0
    start = time.perf_counter()
    for i in range(_CALIBRATION_LOOPS):
        acc += i & 7
    elapsed = time.perf_counter() - start
    assert acc  # keep the loop honest
    return _CALIBRATION_LOOPS / elapsed / 1000.0


def _peak_rss_mb() -> float:
    """Peak resident set size in MiB, including reaped children."""
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return max(self_rss, child_rss) / divisor


def _timed_sweep(tasks, shards: int, grid: str, root_seed: int):
    start = time.perf_counter()
    sweep = run_sweep(tasks, shards=shards, grid=grid, root_seed=root_seed)
    wall = time.perf_counter() - start
    return sweep, wall


def bench_grid(
    label: str, grid: str, root_seed: int, shards: int, calibration: float
) -> dict:
    """Benchmark one grid sequential vs sharded; return the report dict."""
    tasks = build_grid(grid, root_seed=root_seed)

    seq, seq_wall = _timed_sweep(tasks, 1, grid, root_seed)
    shd, shd_wall = _timed_sweep(tasks, shards, grid, root_seed)

    events = seq.events_processed
    seq_eps = events / seq_wall if seq_wall > 0 else 0.0
    shd_eps = events / shd_wall if shd_wall > 0 else 0.0
    report = {
        "experiment": label,
        "grid": grid,
        "root_seed": root_seed,
        "tasks": len(tasks),
        "cpu_count": os.cpu_count(),
        "calibration_kops": round(calibration, 1),
        "events_processed": events,
        "sequential": {
            "wall_s": round(seq_wall, 4),
            "events_per_sec": round(seq_eps, 1),
            "normalized_throughput": round(seq_eps / calibration, 4),
        },
        "sharded": {
            "shards": shards,
            "wall_s": round(shd_wall, 4),
            "events_per_sec": round(shd_eps, 1),
            "speedup": round(seq_wall / shd_wall, 3) if shd_wall > 0 else 0.0,
            "retries": shd.retries,
        },
        "digest": seq.digest(),
        "digest_match": seq.canonical() == shd.canonical(),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    return report


def check_baseline(report: dict, baseline_path: Path, tolerance: float) -> str:
    """Compare a fresh report against the committed baseline.

    Returns an error message, or ``""`` if the gate passes. Only the
    *normalised* sequential throughput is compared — raw wall time moves
    with the host, normalised throughput only moves with the code.
    """
    if not baseline_path.exists():
        return f"no committed baseline at {baseline_path}"
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("grid") != report["grid"]:
        return (
            f"baseline grid {baseline.get('grid')!r} does not match"
            f" current grid {report['grid']!r} — regenerate the baseline"
        )
    base = baseline["sequential"]["normalized_throughput"]
    cur = report["sequential"]["normalized_throughput"]
    if base <= 0:
        return f"baseline normalized_throughput is {base}; regenerate it"
    ratio = cur / base
    if ratio < 1.0 - tolerance:
        return (
            f"{report['grid']}: sequential throughput regressed"
            f" {100 * (1 - ratio):.1f}% vs baseline"
            f" (normalised {cur:.4f} vs {base:.4f},"
            f" tolerance {100 * tolerance:.0f}%)"
        )
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true",
        help="run the CI-sized -small grids",
    )
    parser.add_argument(
        "--experiments", nargs="*", choices=sorted(BENCH_GRIDS),
        default=sorted(BENCH_GRIDS),
        help="which experiments to benchmark",
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep root seed")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count for the sharded mode (default: min(4, cpus))",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail if sequential fig6 throughput regressed vs the"
             " committed BENCH_fig6.json (calibration-normalised)",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.10")),
        help="allowed fractional regression for --check-baseline",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="do not overwrite the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    shards = args.shards or min(4, os.cpu_count() or 1)
    if shards < 2:
        shards = 2  # always exercise the multiprocessing path

    calibration = calibrate()
    print(f"host calibration: {calibration:.0f} kops/s,"
          f" {os.cpu_count()} cpu(s); sharded mode uses {shards} shards")

    failures = []
    for label in args.experiments:
        small_grid, full_grid = BENCH_GRIDS[label]
        grid = small_grid if args.small else full_grid
        report = bench_grid(label, grid, args.seed, shards, calibration)
        seq, shd = report["sequential"], report["sharded"]
        print(
            f"{grid:>14}: seq {seq['wall_s']:.3f}s"
            f" ({seq['events_per_sec']:.0f} ev/s)"
            f" | sharded x{shards} {shd['wall_s']:.3f}s"
            f" (speedup {shd['speedup']:.2f})"
            f" | digests {'match' if report['digest_match'] else 'DIFFER'}"
        )
        if not report["digest_match"]:
            failures.append(f"{grid}: sharded digest differs from sequential")

        out_path = RESULTS_DIR / f"BENCH_{label}.json"
        if args.check_baseline and label == "fig6":
            err = check_baseline(report, out_path, args.tolerance)
            if err:
                failures.append(err)
            else:
                base = json.loads(out_path.read_text())
                print(
                    f"  baseline gate OK: normalised"
                    f" {seq['normalized_throughput']:.4f} vs committed"
                    f" {base['sequential']['normalized_throughput']:.4f}"
                    f" (tolerance {100 * args.tolerance:.0f}%)"
                )
        if not args.no_write and not args.check_baseline:
            RESULTS_DIR.mkdir(exist_ok=True)
            out_path.write_text(json.dumps(report, indent=2) + "\n")
            print(f"  wrote {out_path.relative_to(Path.cwd())}"
                  if out_path.is_relative_to(Path.cwd())
                  else f"  wrote {out_path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
