#!/usr/bin/env python
"""End-to-end benchmark harness for the sharded experiment runner.

Runs the fig6 / table1 / chaos sweep grids under both **sequential**
(``shards=1``, fully in-process) and **sharded** execution, verifies the
two produce byte-identical results, and emits one JSON report per grid
(``benchmarks/results/BENCH_fig6.json`` etc.) with:

* wall time per mode,
* simulation events per second,
* sharded-over-sequential speedup,
* peak RSS (self + children),
* a host *calibration score* (pure-python spin loop) so throughput can
  be compared across machines of different speeds.

The ``--check-baseline`` flag turns the harness into a regression gate:
the current sequential throughput is compared against the committed
baseline JSON, **normalised by the calibration score**, and the run
fails if it regressed by more than the tolerance (default 10%, override
with ``--tolerance`` or ``REPRO_BENCH_TOLERANCE``). CI runs
``python benchmarks/harness.py --small --check-baseline``.

Every run is also appended to ``benchmarks/results/HISTORY.jsonl`` (one
compact JSON line per grid per run), and the harness emits a
*trajectory verdict* per grid: the current normalised throughput is
compared against **both** the committed baseline and the rolling median
of the last few same-grid history entries, yielding ``regression`` /
``improvement`` / ``stable`` / ``no-data``. Under ``--check-baseline``
a ``regression`` verdict fails the run — so a slow drift that stays
inside the single-baseline tolerance each step still gets caught once
it falls behind its own recent trajectory (see ``docs/performance.md``).

Note on speedup: the sharded mode pays per-worker process start-up, so
on small grids (and especially on single-core machines — ``cpu_count``
is recorded in the JSON) the speedup can be < 1. It approaches the
shard count as grids grow and cores are available.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf import build_grid, run_sweep  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"
HISTORY_PATH = RESULTS_DIR / "HISTORY.jsonl"

#: bump when the history line shape changes (2: + sharded_speedup)
HISTORY_SCHEMA = 2

#: the persistent-pool runner's contract is that sharding is never
#: slower than sequential; a sharded run below parity by more than the
#: tolerance is a regression regardless of history
SPEEDUP_PARITY = 1.0

#: same-grid history entries the rolling trajectory median looks at
TRAJECTORY_WINDOW = 5

#: grids the harness covers, keyed by the experiment label used in the
#: BENCH_<label>.json filename
BENCH_GRIDS = {
    "fig6": ("fig6-small", "fig6"),
    "table1": ("table1-small", "table1"),
    "chaos": ("chaos-small", "chaos"),
}

_CALIBRATION_LOOPS = 2_000_000


def _calibrate_once() -> float:
    acc = 0
    start = time.perf_counter()
    for i in range(_CALIBRATION_LOOPS):
        acc += i & 7
    elapsed = time.perf_counter() - start
    assert acc  # keep the loop honest
    return _CALIBRATION_LOOPS / elapsed / 1000.0


def calibrate(samples: int = 5) -> float:
    """Host speed score in kops/s from a fixed pure-python spin loop.

    Dividing measured throughput by this score gives a machine-neutral
    figure, which is what the baseline gate compares — so a slower CI
    runner doesn't read as a code regression. The score is the *best*
    of ``samples`` loop timings: single spins swing wildly with
    frequency scaling and scheduling (2x observed on busy hosts), and a
    noisy denominator would turn the gate into a coin flip. Best-of-N
    (the standard benchmarking estimator for a noise floor) pairs with
    the best-of-N sweep timing below, so numerator and denominator see
    the same "machine at its quietest" conditions.
    """
    return max(_calibrate_once() for _ in range(samples))


def _peak_rss_mb() -> float:
    """Peak resident set size in MiB, including reaped children."""
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return max(self_rss, child_rss) / divisor


def _timed_sweep(tasks, shards: int, grid: str, root_seed: int, repeats: int):
    """Run the sweep ``repeats`` times; report the best (min) wall time.

    The sweep result is identical every time (that's the determinism
    guarantee), so only the timing varies — min-of-N is the standard
    low-noise estimator and is what both the baseline gate and the
    trajectory verdict consume.
    """
    best_wall = None
    sweep = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        sweep = run_sweep(tasks, shards=shards, grid=grid, root_seed=root_seed)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return sweep, best_wall


def bench_grid(
    label: str, grid: str, root_seed: int, shards: int, calibration: float,
    repeats: int = 5,
) -> dict:
    """Benchmark one grid sequential vs sharded; return the report dict.

    The two modes are timed **interleaved** (seq, sharded, seq, …)
    rather than back to back: on hosts with frequency scaling or noisy
    neighbours the noise regime can shift between two consecutive
    multi-second blocks — alternating the modes makes both sides sample
    the same windows.

    Throughput uses the best-of-repeats wall (the machine at its
    quietest). The **speedup is the median of per-repeat paired
    ratios** instead of a ratio of two bests: each repeat's seq and
    sharded runs are back-to-back inside the same noise window, so
    their ratio cancels the window out, and the median over repeats
    discards the pairs a CPU steal landed in. The ratio of two
    independent minima, by contrast, is extreme-value noise — on a
    busy host it swings several percent either way, which is larger
    than the effect being measured.
    """
    tasks = build_grid(grid, root_seed=root_seed)

    seq = shd = None
    seq_wall = shd_wall = None
    pair_ratios = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        seq = run_sweep(tasks, shards=1, grid=grid, root_seed=root_seed)
        seq_rep = time.perf_counter() - start
        if seq_wall is None or seq_rep < seq_wall:
            seq_wall = seq_rep
        start = time.perf_counter()
        shd = run_sweep(
            tasks, shards=shards, grid=grid, root_seed=root_seed
        )
        shd_rep = time.perf_counter() - start
        if shd_wall is None or shd_rep < shd_wall:
            shd_wall = shd_rep
        if shd_rep > 0:
            pair_ratios.append(seq_rep / shd_rep)

    events = seq.events_processed
    seq_eps = events / seq_wall if seq_wall > 0 else 0.0
    shd_eps = events / shd_wall if shd_wall > 0 else 0.0
    speedup = statistics.median(pair_ratios) if pair_ratios else 0.0
    report = {
        "experiment": label,
        "grid": grid,
        "root_seed": root_seed,
        "tasks": len(tasks),
        "cpu_count": os.cpu_count(),
        "calibration_kops": round(calibration, 1),
        "events_processed": events,
        "sequential": {
            "wall_s": round(seq_wall, 4),
            "events_per_sec": round(seq_eps, 1),
            "normalized_throughput": round(seq_eps / calibration, 4),
        },
        "sharded": {
            "shards": shards,
            "wall_s": round(shd_wall, 4),
            "events_per_sec": round(shd_eps, 1),
            "speedup": round(speedup, 3),
            "retries": shd.retries,
        },
        "digest": seq.digest(),
        "digest_match": seq.canonical() == shd.canonical(),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    return report


def check_baseline(report: dict, baseline_path: Path, tolerance: float) -> str:
    """Compare a fresh report against the committed baseline.

    Returns a delta description, or ``""`` if the report is within
    tolerance. Only the *normalised* sequential throughput is compared —
    raw wall time moves with the host, normalised throughput only moves
    with the code. Whether a nonempty delta fails the run is the
    caller's call: ``main()`` gates on it only when no same-grid
    history exists (the history floor is the gate otherwise).
    """
    if not baseline_path.exists():
        return f"no committed baseline at {baseline_path}"
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("grid") != report["grid"]:
        return (
            f"baseline grid {baseline.get('grid')!r} does not match"
            f" current grid {report['grid']!r} — regenerate the baseline"
        )
    base = baseline["sequential"]["normalized_throughput"]
    cur = report["sequential"]["normalized_throughput"]
    if base <= 0:
        return f"baseline normalized_throughput is {base}; regenerate it"
    ratio = cur / base
    if ratio < 1.0 - tolerance:
        return (
            f"{report['grid']}: sequential throughput regressed"
            f" {100 * (1 - ratio):.1f}% vs baseline"
            f" (normalised {cur:.4f} vs {base:.4f},"
            f" tolerance {100 * tolerance:.0f}%)"
        )
    return ""


def history_entry(report: dict, ts=None) -> dict:
    """One compact HISTORY.jsonl line for a grid report."""
    return {
        "schema": HISTORY_SCHEMA,
        "ts": round(time.time() if ts is None else ts, 3),
        "experiment": report["experiment"],
        "grid": report["grid"],
        "root_seed": report["root_seed"],
        "tasks": report["tasks"],
        "events_processed": report["events_processed"],
        "calibration_kops": report["calibration_kops"],
        "normalized_throughput": (
            report["sequential"]["normalized_throughput"]
        ),
        "wall_s": report["sequential"]["wall_s"],
        # None for reports that never ran a sharded mode (the analytics
        # skip None entries, so old schema-1 lines stay comparable)
        "sharded_speedup": report.get("sharded", {}).get("speedup"),
        "digest": report["digest"],
        "digest_match": report["digest_match"],
    }


def append_history(report: dict, path: Path = HISTORY_PATH, ts=None) -> dict:
    """Append one history line; returns the entry written."""
    path.parent.mkdir(exist_ok=True)
    entry = history_entry(report, ts=ts)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: Path = HISTORY_PATH, grid=None) -> list:
    """Parse HISTORY.jsonl, oldest first; malformed lines are skipped."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if grid is None or entry.get("grid") == grid:
            entries.append(entry)
    return entries


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def trajectory_verdict(
    report: dict,
    history: list,
    baseline: dict = None,
    tolerance: float = 0.10,
    window: int = TRAJECTORY_WINDOW,
) -> dict:
    """Judge the current run against baseline AND rolling trajectory.

    The trajectory references come from the last ``window`` same-grid
    history entries (the current run must NOT already be appended): the
    *median* is the reported trend, the *floor* (the worst recent run)
    is the regression reference. Gating on the floor instead of the
    median keeps the verdict honest on noisy hosts — single-run
    throughput swings far more than ``tolerance``, but a genuine code
    regression drags the whole distribution below even the worst
    healthy run. Verdicts:

    * ``regression`` — below tolerance against the floor of the recent
      window (or, when there is no history yet, against the committed
      baseline);
    * ``improvement`` — above tolerance against every reference
      (baseline and rolling median);
    * ``stable`` — anything in between;
    * ``no-data`` — no baseline and no history to compare against.

    The baseline delta is always computed and reported; it only *gates*
    when no history exists, because a single committed number from one
    machine state is a far noisier reference than the floor of the last
    few runs on the current machine.

    When the report carries a sharded mode, its speedup is gated too
    (the **sharded-speedup floor**): the persistent-pool runner promises
    sharding is never slower than sequential, so the reference is
    parity (``SPEEDUP_PARITY``) raised to the floor of the recent
    window's recorded speedups — a host whose history shows healthy
    x3 speedups regresses long before it sinks below parity. Throughput-
    only reports (and schema-1 history lines) skip this gate entirely.
    """
    current = report["sequential"]["normalized_throughput"]
    verdict = {
        "grid": report["grid"],
        "current": current,
        "tolerance": tolerance,
        "baseline": None,
        "baseline_ratio": None,
        "trajectory": None,
        "trajectory_ratio": None,
        "floor": None,
        "floor_ratio": None,
        "window": 0,
        "sharded_speedup": None,
        "speedup_floor": None,
        "speedup_ratio": None,
    }
    gate_ratios = []
    trend_ratios = []
    if baseline is not None:
        base = baseline.get("sequential", {}).get("normalized_throughput", 0)
        if base > 0:
            verdict["baseline"] = base
            verdict["baseline_ratio"] = round(current / base, 4)
            trend_ratios.append(current / base)
    recent = [
        e["normalized_throughput"]
        for e in history
        if e.get("grid") == report["grid"]
        and e.get("normalized_throughput", 0) > 0
    ][-window:]
    if recent:
        med = _median(recent)
        floor = min(recent)
        verdict["trajectory"] = round(med, 4)
        verdict["trajectory_ratio"] = round(current / med, 4)
        verdict["floor"] = round(floor, 4)
        verdict["floor_ratio"] = round(current / floor, 4)
        verdict["window"] = len(recent)
        gate_ratios.append(current / floor)
        trend_ratios.append(current / med)
    if not gate_ratios and verdict["baseline"] is not None:
        gate_ratios.append(current / verdict["baseline"])
    # A speedup reference alone must not turn "no throughput data" into
    # a passing verdict — the loud no-data failure is the CI backstop.
    has_throughput_ref = bool(gate_ratios)
    speedup = report.get("sharded", {}).get("speedup")
    if speedup:
        recent_speedups = [
            e["sharded_speedup"]
            for e in history
            if e.get("grid") == report["grid"]
            and e.get("sharded_speedup")
        ][-window:]
        floor = SPEEDUP_PARITY
        if recent_speedups:
            floor = max(floor, min(recent_speedups))
        verdict["sharded_speedup"] = speedup
        verdict["speedup_floor"] = round(floor, 3)
        verdict["speedup_ratio"] = round(speedup / floor, 4)
        gate_ratios.append(speedup / floor)
    if not has_throughput_ref:
        verdict["verdict"] = "no-data"
    elif min(gate_ratios) < 1.0 - tolerance:
        verdict["verdict"] = "regression"
    elif min(trend_ratios) > 1.0 + tolerance:
        verdict["verdict"] = "improvement"
    else:
        verdict["verdict"] = "stable"
    return verdict


def render_verdict(verdict: dict) -> str:
    parts = [f"trajectory verdict [{verdict['grid']}]: {verdict['verdict']}"]
    if verdict["baseline_ratio"] is not None:
        parts.append(
            f"vs baseline {verdict['baseline']:.4f}:"
            f" x{verdict['baseline_ratio']:.3f}"
        )
    if verdict["trajectory_ratio"] is not None:
        parts.append(
            f"vs rolling median of {verdict['window']}"
            f" ({verdict['trajectory']:.4f}): x{verdict['trajectory_ratio']:.3f}"
        )
        parts.append(
            f"vs floor ({verdict['floor']:.4f}): x{verdict['floor_ratio']:.3f}"
        )
    if verdict["speedup_ratio"] is not None:
        parts.append(
            f"sharded speedup {verdict['sharded_speedup']:.2f}"
            f" vs floor {verdict['speedup_floor']:.2f}:"
            f" x{verdict['speedup_ratio']:.3f}"
        )
    return " | ".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true",
        help="run the CI-sized -small grids",
    )
    parser.add_argument(
        "--experiments", nargs="*", choices=sorted(BENCH_GRIDS),
        default=sorted(BENCH_GRIDS),
        help="which experiments to benchmark",
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep root seed")
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per mode; best (min wall) is reported",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count for the sharded mode (default: min(4, cpus))",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail if sequential fig6 throughput regressed vs the"
             " committed BENCH_fig6.json (calibration-normalised)",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.10")),
        help="allowed fractional regression for --check-baseline",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="do not overwrite the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    shards = args.shards or min(4, os.cpu_count() or 1)
    if shards < 2:
        shards = 2  # always exercise the multiprocessing path

    calibration = calibrate()
    print(f"host calibration: {calibration:.0f} kops/s,"
          f" {os.cpu_count()} cpu(s); sharded mode uses {shards} shards")

    failures = []
    for label in args.experiments:
        small_grid, full_grid = BENCH_GRIDS[label]
        grid = small_grid if args.small else full_grid
        report = bench_grid(
            label, grid, args.seed, shards, calibration,
            repeats=args.repeats,
        )
        seq, shd = report["sequential"], report["sharded"]
        print(
            f"{grid:>14}: seq {seq['wall_s']:.3f}s"
            f" ({seq['events_per_sec']:.0f} ev/s)"
            f" | sharded x{shards} {shd['wall_s']:.3f}s"
            f" (speedup {shd['speedup']:.2f})"
            f" | digests {'match' if report['digest_match'] else 'DIFFER'}"
        )
        if not report["digest_match"]:
            failures.append(f"{grid}: sharded digest differs from sequential")

        out_path = RESULTS_DIR / f"BENCH_{label}.json"
        baseline = (
            json.loads(out_path.read_text()) if out_path.exists() else None
        )
        if baseline is not None and baseline.get("grid") != grid:
            baseline = None  # committed baseline is for the other size
        history = load_history(grid=grid)
        verdict = trajectory_verdict(
            report, history, baseline=baseline,
            tolerance=args.tolerance,
        )
        print(f"  {render_verdict(verdict)}")
        if args.check_baseline and verdict["verdict"] == "regression":
            failures.append(
                f"{grid}: trajectory verdict is 'regression'"
                f" ({render_verdict(verdict)})"
            )
        if args.check_baseline and verdict["verdict"] == "no-data":
            # A gate that silently passes because it found nothing to
            # compare against is not a gate. Fail loudly: commit a
            # BENCH_<label>.json baseline or HISTORY.jsonl entries.
            failures.append(
                f"{grid}: trajectory verdict is 'no-data' — no committed"
                " baseline and no HISTORY.jsonl entries for this grid;"
                " the regression gate cannot run. Commit a baseline"
                " (python benchmarks/harness.py --small) first."
            )
        if not args.no_write:
            append_history(report)

        if args.check_baseline and label == "fig6":
            # The classic fig6-vs-committed-baseline delta. With
            # same-grid history the floor-based trajectory verdict above
            # is the gate (the committed number is one machine state; the
            # floor of the last few runs is a steadier reference), so the
            # delta is reported but does not fail the run on its own.
            # Without history it is the only reference and gates hard.
            err = check_baseline(report, out_path, args.tolerance)
            if err and not history:
                failures.append(err)
            elif err:
                print(f"  baseline delta (informational; history floor"
                      f" gates): {err}")
            else:
                base = json.loads(out_path.read_text())
                print(
                    f"  baseline gate OK: normalised"
                    f" {seq['normalized_throughput']:.4f} vs committed"
                    f" {base['sequential']['normalized_throughput']:.4f}"
                    f" (tolerance {100 * args.tolerance:.0f}%)"
                )
        if not args.no_write and not args.check_baseline:
            RESULTS_DIR.mkdir(exist_ok=True)
            out_path.write_text(json.dumps(report, indent=2) + "\n")
            print(f"  wrote {out_path.relative_to(Path.cwd())}"
                  if out_path.is_relative_to(Path.cwd())
                  else f"  wrote {out_path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
