"""Tests for the runtime protocol sanitizer.

Structure: one clean-run gate (the §4 workload must produce zero
violations) plus one known-bad scenario per invariant, each asserting
that the resulting finding is structured — it names the rule and the
item/site/span that caused it.
"""

import pytest

from repro.analysis import ProtocolSanitizer, run_check
from repro.analysis.hb import CausalOrder
from repro.cluster import build_paper_system
from repro.core import InvalidVolume
from repro.db.locks import LockManager
from repro.sim import Environment


def sanitized_system(**overrides):
    overrides.setdefault("n_items", 2)
    overrides.setdefault("initial_stock", 90.0)
    overrides.setdefault("observe", True)
    overrides.setdefault("sanitize", True)
    return build_paper_system(**overrides)


class TestCleanRun:
    def test_paper_workload_sanitizes_clean(self):
        run = run_check(experiment="fig6", n_updates=120, seed=0)
        assert run.ok, run.render()
        assert run.report.violations == []
        counters = run.report.counters
        assert counters["holds_opened"] == counters["holds_closed"]
        assert counters["unsynced_balances"] == 0
        assert counters["events"] > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_check(experiment="fig9")

    def test_finish_is_idempotent(self):
        run = run_check(experiment="fig6", n_updates=30, seed=1)
        again = run.system.sanitizer.finish()
        assert again is run.report
        assert again.violations == run.report.violations

    def test_render_names_the_verdict(self):
        run = run_check(experiment="fig6", n_updates=30, seed=2)
        out = run.render()
        assert "PASS" in out
        assert "protocol sanitizer report" in out


class TestHoldLifecycle:
    def test_double_spend_hold_reported_with_context(self):
        """Consuming an already-consumed hold is the double-spend bug the
        paper's holds exist to prevent; the finding must carry the span
        context the hold was opened under."""
        system = sanitized_system()
        table = system.site("site1").av_table
        hold = table.hold("item0", ctx=("trace-dbl", 42))
        hold.add(table.take("item0", 10.0))
        hold.consume(10.0)
        with pytest.raises(InvalidVolume):
            hold.consume(5.0)
        report = system.sanitizer.report
        findings = report.by_rule("hold.double-close")
        assert len(findings) == 1
        v = findings[0]
        assert v.severity == "violation"
        assert v.item == "item0"
        assert v.site == "site1"
        assert v.trace_id == "trace-dbl"
        assert v.span_id == 42
        assert str(hold.hold_id) in v.detail

    def test_leaked_hold_reported_at_teardown(self):
        system = sanitized_system()
        table = system.site("site2").av_table
        hold = table.hold("item1", ctx=("trace-leak", 7))
        hold.add(table.take("item1", 5.0))
        report = system.sanitizer.finish()
        leaks = report.by_rule("hold.leak")
        assert len(leaks) == 1
        v = leaks[0]
        assert (v.item, v.site) == ("item1", "site2")
        assert v.trace_id == "trace-leak"
        assert v.span_id == 7
        assert report.counters["holds_opened"] == 1
        assert report.counters["holds_closed"] == 0
        # releasing repairs nothing after the fact — the report is fixed
        hold.release()


class TestConservation:
    def test_forged_volume_caught_immediately(self):
        """AV appearing out of thin air (no mint) breaks conservation."""
        system = sanitized_system()
        system.site("site1").av_table.add("item0", 1000.0)
        report = system.sanitizer.report
        findings = report.by_rule("av.conservation")
        assert findings, report.render()
        v = findings[0]
        assert v.item == "item0"
        assert v.site == "site1"
        assert "exceeds headroom" in v.detail

    def test_spend_and_mint_keep_accounts_balanced(self):
        system = sanitized_system()

        def flow(env):
            yield system.update("site1", "item0", -10.0)  # spend
            yield system.update("site0", "item0", +25.0)  # mint

        system.env.process(flow(system.env), name="flow")
        system.run()
        report = system.sanitizer.finish()
        assert report.ok, report.render()


class TestDroppedPropagation:
    def test_lost_propagation_is_a_violation(self):
        """A dropped prop.push can never be retransmitted: the replica
        diverges permanently. The finding names the span that committed
        the update."""
        system = sanitized_system(propagate=True)
        system.network.faults.drop_probability = 1.0

        def flow(env):
            # Locally covered: only the propagation fan-out hits the wire.
            yield system.update("site1", "item0", -5.0)

        system.env.process(flow(system.env), name="flow")
        system.run()
        report = system.sanitizer.finish()
        lost = report.by_rule("prop.lost")
        assert lost, report.render()
        v = lost[0]
        assert v.severity == "violation"
        assert v.item == "item0"
        assert v.site in ("site0", "site2")  # the starved replica
        assert v.span_id is not None
        assert v.trace_id
        assert v.msg_id is not None
        assert not report.ok


class TestLockAudit:
    def make_sanitizer(self):
        return ProtocolSanitizer()

    def test_wait_cycle_reported_as_deadlock(self):
        env = Environment()
        locks = LockManager(env, "site9.locks")
        san = self.make_sanitizer()
        locks.monitor = san
        locks.acquire("i1", "imm:T1", span_id=7)
        locks.acquire("i2", "imm:T2", span_id=8)
        locks.acquire("i2", "imm:T1", span_id=7)  # T1 waits on T2
        locks.acquire("i1", "imm:T2", span_id=9)  # T2 waits on T1: cycle
        findings = san.report.by_rule("lock.deadlock")
        assert len(findings) == 1
        v = findings[0]
        assert v.severity == "violation"
        assert v.site == "site9"
        assert v.item == "i1"
        assert v.span_id == 9
        assert "imm:T1" in v.detail and "imm:T2" in v.detail

    def test_out_of_order_site_acquisition_reported(self):
        env = Environment()
        a = LockManager(env, "site1.locks")
        b = LockManager(env, "site2.locks")
        san = self.make_sanitizer()
        a.monitor = san
        b.monitor = san
        b.acquire("x", "imm:T9", span_id=3)
        a.acquire("x", "imm:T9", span_id=3)  # site1 after site2: descending
        findings = san.report.by_rule("lock.order")
        assert len(findings) == 1
        v = findings[0]
        assert (v.site, v.item, v.span_id) == ("site1", "x", 3)
        assert "canonical ascending" in v.detail

    def test_canonical_order_and_release_stay_clean(self):
        env = Environment()
        a = LockManager(env, "site1.locks")
        b = LockManager(env, "site2.locks")
        san = self.make_sanitizer()
        a.monitor = san
        b.monitor = san
        a.acquire("x", "imm:T1", span_id=1)
        b.acquire("x", "imm:T1", span_id=1)
        a.release("x", "imm:T1")
        b.release("x", "imm:T1")
        assert san.report.ok


class TestHappensBefore:
    def grant(self, causal, grantor, item, av_after, msg_id):
        causal.on_send(grantor, msg_id)
        causal.on_grant(grantor, item, av_after, 0.0, msg_id)

    def test_concurrent_selection_is_a_stale_race(self):
        causal = CausalOrder()
        self.grant(causal, "site0", "item0", av_after=5.0, msg_id=1)
        # site2 has seen no message from site0: concurrent in HB terms.
        causal.on_select("site2", "item0", "site0", believed=20.0, time=1.0,
                         trace="t-race", span=11)
        assert causal.stale_races == 1
        assert causal.belief_lags == 0
        sample = causal.samples[0]
        assert sample["kind"] == "hb.stale-belief-race"
        assert sample["target"] == "site0"
        assert sample["span"] == 11

    def test_causally_ordered_selection_is_a_belief_lag(self):
        causal = CausalOrder()
        self.grant(causal, "site0", "item0", av_after=5.0, msg_id=1)
        # A later message from site0 reaches site2, so the grant
        # happened-before the selection — the stale level was knowable.
        causal.on_send("site0", msg_id=2)
        causal.on_recv("site2", msg_id=2)
        causal.on_select("site2", "item0", "site0", believed=20.0, time=2.0)
        assert causal.belief_lags == 1
        assert causal.stale_races == 0
        assert causal.samples[0]["kind"] == "hb.belief-lag"

    def test_accurate_belief_not_flagged(self):
        causal = CausalOrder()
        self.grant(causal, "site0", "item0", av_after=30.0, msg_id=1)
        causal.on_select("site2", "item0", "site0", believed=30.0, time=1.0)
        causal.on_select("site2", "item0", "site0", believed=None, time=1.0)
        causal.on_select("site2", "item1", "site9", believed=99.0, time=1.0)
        assert causal.stale_races == 0
        assert causal.belief_lags == 0

    def test_stale_beliefs_surface_as_report_warnings(self):
        system = sanitized_system()
        san = system.sanitizer
        self.grant(san.causal, "site0", "item0", av_after=5.0, msg_id=900001)
        san.causal.on_select("site2", "item0", "site0", believed=20.0, time=1.0)
        report = san.finish()
        assert report.ok  # warnings never fail the run
        warned = report.by_rule("hb.stale-belief-race")
        assert len(warned) == 1
        assert warned[0].severity == "warning"
        assert report.counters["stale_belief_races"] == 1
        assert report.hb_samples
