"""Unit tests for catalogue, config, bootstrap and system assembly."""

import pytest

from repro.cluster import (
    DistributedSystem,
    InvariantViolation,
    Product,
    ProductCatalog,
    ProductClass,
    SiteRole,
    SystemConfig,
    build_paper_system,
    make_catalog,
    paper_config,
    split_volume,
)


class TestCatalog:
    def test_make_catalog_shape(self):
        cat = make_catalog(10, initial_stock=50.0, regular_fraction=0.7)
        assert len(cat) == 10
        assert len(cat.regular_items()) == 7
        assert len(cat.non_regular_items()) == 3
        assert cat.get("item0").regular
        assert not cat.get("item9").regular
        assert all(p.initial_stock == 50.0 for p in cat)

    def test_item_name_width_scales(self):
        cat = make_catalog(150)
        assert "item000" in cat and "item149" in cat

    def test_validation(self):
        with pytest.raises(ValueError):
            make_catalog(0)
        with pytest.raises(ValueError):
            make_catalog(5, regular_fraction=1.5)

    def test_duplicate_product_rejected(self):
        cat = ProductCatalog()
        cat.add(Product("x", ProductClass.REGULAR, 1.0))
        with pytest.raises(ValueError):
            cat.add(Product("x", ProductClass.REGULAR, 1.0))

    def test_negative_stock_rejected(self):
        with pytest.raises(ValueError):
            ProductCatalog().add(Product("x", ProductClass.REGULAR, -1.0))


class TestConfig:
    def test_site_names_and_roles(self):
        config = SystemConfig(n_retailers=3)
        assert config.site_names == ["site0", "site1", "site2", "site3"]
        assert config.maker == "site0"
        assert config.retailers == ["site1", "site2", "site3"]
        assert config.n_sites == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n_retailers=0)
        with pytest.raises(ValueError):
            SystemConfig(av_fraction=1.5)
        with pytest.raises(ValueError):
            SystemConfig(latency_mean=-1)

    def test_paper_config_defaults(self):
        config = paper_config()
        assert config.n_retailers == 2
        assert config.regular_fraction == 1.0


class TestSplitVolume:
    def test_equal_split_integral(self):
        shares = split_volume(90, {"a": 1, "b": 1, "c": 1}, ["a", "b", "c"])
        assert shares == {"a": 30.0, "b": 30.0, "c": 30.0}

    def test_remainder_goes_to_earliest(self):
        shares = split_volume(10, {"a": 1, "b": 1, "c": 1}, ["a", "b", "c"])
        assert shares == {"a": 4.0, "b": 3.0, "c": 3.0}
        assert sum(shares.values()) == 10

    def test_weighted(self):
        shares = split_volume(100, {"a": 3, "b": 1}, ["a", "b"])
        assert shares == {"a": 75.0, "b": 25.0}

    def test_fractional_total(self):
        shares = split_volume(1.5, {"a": 1, "b": 2}, ["a", "b"])
        assert shares["a"] == pytest.approx(0.5)
        assert shares["b"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_volume(-1, {"a": 1}, ["a"])
        with pytest.raises(ValueError):
            split_volume(10, {"a": 1}, ["a", "b"])
        with pytest.raises(ValueError):
            split_volume(10, {"a": 0}, ["a"])


class TestSystemAssembly:
    def test_build_paper_system_shape(self):
        system = build_paper_system(n_items=4, initial_stock=60.0)
        assert len(system.sites) == 3
        assert system.maker.is_maker
        assert [r.role for r in system.retailers] == [SiteRole.RETAILER] * 2
        for site in system.sites.values():
            assert len(site.store) == 4
            assert site.value("item0") == 60.0
            assert site.av_table.get("item0") == 20.0

    def test_av_weights_respected(self):
        system = DistributedSystem.build(
            SystemConfig(
                n_items=1,
                initial_stock=100.0,
                av_weights={"site0": 2, "site1": 1, "site2": 1},
            )
        )
        assert system.site("site0").av_table.get("item0") == 50.0
        assert system.site("site1").av_table.get("item0") == 25.0

    def test_av_fraction(self):
        system = build_paper_system(n_items=1, initial_stock=90.0, av_fraction=0.5)
        assert system.av_total("item0") == 45.0

    def test_bootstrap_seeds_beliefs(self):
        system = build_paper_system(n_items=1, initial_stock=90.0)
        beliefs = system.site("site1").accelerator.beliefs
        assert beliefs.believed_volume("site0", "item0") == 30.0
        assert beliefs.believed_volume("site2", "item0") == 30.0
        assert beliefs.believed_volume("site1", "item0") is None  # not self

    def test_ledger_initialised(self):
        system = build_paper_system(n_items=2, initial_stock=10.0)
        assert system.collector.ledger.true_value("item1") == 10.0

    def test_non_regular_items_have_no_av(self):
        system = build_paper_system(
            n_items=2, initial_stock=10.0, regular_fraction=0.5
        )
        site = system.site("site1")
        assert site.av_table.defined("item0")
        assert not site.av_table.defined("item1")

    def test_invariant_violation_detected(self):
        system = build_paper_system(n_items=1, initial_stock=90.0)
        # Corrupt: mint AV out of thin air.
        system.site("site1").av_table.add("item0", 1000.0)
        with pytest.raises(InvariantViolation, match="exceeds true value"):
            system.check_invariants()

    def test_negative_av_detected(self):
        system = build_paper_system(n_items=1, initial_stock=90.0)
        system.site("site1").av_table.debug_set("item0", -1.0)
        with pytest.raises(InvariantViolation, match="negative AV"):
            system.check_invariants()

    def test_non_regular_divergence_detected(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, regular_fraction=0.0
        )
        system.site("site1").store.set_value("item0", 42.0)
        with pytest.raises(InvariantViolation, match="diverged"):
            system.check_invariants()

    def test_site_value_passthrough(self):
        system = build_paper_system(n_items=1, initial_stock=90.0)
        assert system.site("site2").value("item0") == 90.0

    def test_repr(self):
        system = build_paper_system(n_items=1, initial_stock=90.0)
        assert "sites=3" in repr(system)
