"""Tests for the proactive AV rebalancer."""

import pytest

from repro.cluster import build_paper_system
from repro.core import AVRebalancer
from repro.core.rebalancer import TAG_REBALANCE


@pytest.fixture
def system():
    return build_paper_system(n_items=1, initial_stock=90.0, seed=0)


ITEM = "item0"


class TestValidation:
    def test_parameter_checks(self, system):
        accel = system.maker.accelerator
        with pytest.raises(ValueError):
            AVRebalancer(accel, interval=0)
        with pytest.raises(ValueError):
            AVRebalancer(accel, surplus_factor=1.0)
        with pytest.raises(ValueError):
            AVRebalancer(accel, needy_factor=1.0)
        with pytest.raises(ValueError):
            AVRebalancer(accel, push_fraction=0.0)


class TestRebalancing:
    def drain_site1(self, system):
        """site1 spends its AV; the maker learns via the transfer."""
        p = system.update("site1", ITEM, -40)  # 30 own + transfer
        system.run()
        assert p.value.committed

    def test_no_push_without_surplus(self, system):
        reb = AVRebalancer(system.maker.accelerator)
        assert reb.rebalance_once() == 0  # balanced bootstrap: 30/30/30

    def test_push_flows_to_believed_poorest(self, system):
        self.drain_site1(system)
        # Maker mints a large surplus.
        p = system.update("site0", ITEM, +100)
        system.run()
        # Beliefs are stale by design (the paper's "may not be current
        # data"): the maker still believes both retailers hold their
        # bootstrap 30, so the watermarks must be set accordingly.
        reb = AVRebalancer(
            system.maker.accelerator, surplus_factor=1.2, needy_factor=0.9
        )
        before = system.site("site1").av_table.get(ITEM)
        sent = reb.rebalance_once()
        system.run()
        assert sent == 1
        assert reb.pushes_sent == 1 and reb.volume_pushed > 0
        assert system.site("site1").av_table.get(ITEM) > before
        assert system.stats.by_tag[TAG_REBALANCE] == 1
        system.check_invariants()

    def test_push_conserves_av(self, system):
        self.drain_site1(system)
        p = system.update("site0", ITEM, +100)
        system.run()
        total_before = system.av_total(ITEM)
        reb = AVRebalancer(
            system.maker.accelerator, surplus_factor=1.2, needy_factor=0.9
        )
        reb.rebalance_once()
        system.run()
        assert system.av_total(ITEM) == total_before

    def test_periodic_loop_reduces_on_demand_transfers(self):
        """With the rebalancer streaming maker mints to retailers, the
        retailers' blocked-on-AV transfers mostly disappear."""

        def run(with_rebalancer):
            system = build_paper_system(n_items=1, initial_stock=90.0, seed=3)
            if with_rebalancer:
                reb = AVRebalancer(
                    system.maker.accelerator, interval=10.0,
                    surplus_factor=1.2, needy_factor=0.9,
                )
                reb.start()

            def driver(env):
                for i in range(30):
                    yield system.update("site0", ITEM, +12)
                    yield env.timeout(5)
                    yield system.update("site1", ITEM, -8)
                    yield env.timeout(5)

            system.env.process(driver(system.env))
            system.run(until=400)
            return system.collector.av_requests_total()

        assert run(True) < run(False)

    def test_bounced_push_returns_volume(self, system):
        """Pushing to a site that dropped the item bounces back."""
        self.drain_site1(system)
        p = system.update("site0", ITEM, +100)
        system.run()
        # site1 secretly undefines the item (simulates a mid-flight
        # reclassification the maker hasn't heard about).
        system.site("site1").accelerator.av_table.undefine(ITEM)
        maker_before = system.maker.av_table.get(ITEM)
        reb = AVRebalancer(
            system.maker.accelerator, surplus_factor=1.2, needy_factor=0.9
        )
        sent = reb.rebalance_once()
        assert sent == 1
        system.run()
        # Volume came home.
        assert system.maker.av_table.get(ITEM) == maker_before

    def test_crashed_site_pauses_loop(self, system):
        reb = AVRebalancer(system.maker.accelerator, interval=5.0)
        reb.start()
        system.network.faults.crash("site0")
        system.run(until=50)
        assert reb.pushes_sent == 0

    def test_start_idempotent(self, system):
        reb = AVRebalancer(system.maker.accelerator)
        p1 = reb.start()
        p2 = reb.start()
        assert p1 is p2
