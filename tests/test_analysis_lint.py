"""Tests for the static lint pass (repro.analysis.lint)."""

import textwrap
from pathlib import Path

from repro.analysis.lint import LintFinding, Linter, default_rules, lint_paths


def lint_source(tmp_path, source, relpath="src/mod.py"):
    """Lint one snippet as if it lived at ``relpath`` in a repo tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)])


def rules_hit(findings):
    return sorted({f.rule for f in findings})


class TestWallClock:
    def test_host_clock_reads_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), time.perf_counter(), datetime.now()
            """)
        assert rules_hit(findings) == ["wall-clock"]
        assert len(findings) == 3

    def test_sim_clock_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            def stamp(env):
                return env.now
            """) == []

    def test_benchmarks_exempt(self, tmp_path):
        assert lint_source(tmp_path, """\
            import time
            t = time.perf_counter()
            """, relpath="benchmarks/bench_x.py") == []


class TestSeededRng:
    def test_direct_default_rng_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng(0)
            """)
        assert rules_hit(findings) == ["seeded-rng"]

    def test_global_seed_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np
            np.random.seed(42)
            """)
        assert rules_hit(findings) == ["seeded-rng"]

    def test_registry_streams_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            def make(registry):
                return registry.stream("net.latency")
            """) == []

    def test_tests_exempt(self, tmp_path):
        assert lint_source(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng(0)
            """, relpath="tests/test_x.py") == []


class TestUnorderedIter:
    def test_for_over_set_literal_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            for x in {1, 2, 3}:
                print(x)
            """)
        assert rules_hit(findings) == ["unordered-iter"]

    def test_comprehension_over_set_call_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def dedupe(xs):
                return [x for x in set(xs)]
            """)
        assert rules_hit(findings) == ["unordered-iter"]

    def test_sorted_wrapper_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            def dedupe(xs):
                return [x for x in sorted(set(xs))]
            """) == []


# The per-file ``message-handlers`` rule was retired: the registry
# checks in repro.analysis.protoflow subsume it (and resolve dynamic
# kinds it could not). See tests/test_analysis_protoflow.py.


class TestSpanCoverage:
    def test_bare_entry_point_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            class FooProtocol:
                def execute(self, item):
                    return item

                def handle_thing(self, msg):
                    return None

                def helper(self):
                    return 1
            """)
        assert rules_hit(findings) == ["span-coverage"]
        assert len(findings) == 2  # execute + handle_thing, not helper

    def test_span_recording_entry_point_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            class FooProtocol:
                def execute(self, accel, item):
                    span = accel.obs.recorder.start("read", accel.site, 0.0)
                    span.finish(1.0)
            """) == []

    def test_non_protocol_classes_exempt(self, tmp_path):
        assert lint_source(tmp_path, """\
            class FooHelper:
                def execute(self, item):
                    return item
            """) == []


class TestSpanKindRegistry:
    def test_unregistered_kind_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def go(rec, site):
                span = rec.start("made.up.kind", site, 0.0)
                span.finish(1.0)
            """)
        assert rules_hit(findings) == ["span-kind-registry"]
        assert "SPAN_SUBSYSTEMS" in findings[0].message

    def test_registered_kind_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            def go(rec, site):
                span = rec.start("read", site, 0.0)
                span.finish(1.0)
            """) == []

    def test_tests_exempt(self, tmp_path):
        assert lint_source(tmp_path, """\
            def go(rec, site):
                rec.start("made.up.kind", site, 0.0)
            """, relpath="tests/test_x.py") == []

    def test_non_span_start_methods_ignored(self, tmp_path):
        # Schedulers/daemons also expose .start(); with fewer than two
        # positional args it cannot be the span-recorder signature.
        assert lint_source(tmp_path, """\
            def go(daemon):
                daemon.start("worker-1")
            """) == []

    def test_dynamic_kinds_ignored(self, tmp_path):
        assert lint_source(tmp_path, """\
            def go(rec, site, kind):
                rec.start(kind, site, 0.0)
            """) == []

    def test_suppressible(self, tmp_path):
        assert lint_source(tmp_path, """\
            def go(rec, site):
                rec.start("one.off", site, 0.0)  # repro-lint: disable=span-kind-registry (debug probe)
            """) == []


class TestUnboundedQueue:
    def test_bare_deque_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from collections import deque
            q = deque()
            """)
        assert rules_hit(findings) == ["unbounded-queue"]

    def test_deque_with_maxlen_clean(self, tmp_path):
        assert lint_source(tmp_path, """\
            from collections import deque
            q = deque(maxlen=64)
            """) == []

    def test_queue_append_without_budget_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            class Mailbox:
                def deliver(self, msg):
                    self.backlog.append(msg)
            """)
        assert rules_hit(findings) == ["unbounded-queue"]
        assert "budget" in findings[0].message

    def test_len_guard_counts_as_budget(self, tmp_path):
        assert lint_source(tmp_path, """\
            class Mailbox:
                def deliver(self, msg):
                    if len(self.backlog) >= 64:
                        return False
                    self.backlog.append(msg)
                    return True
            """) == []

    def test_budget_identifier_counts(self, tmp_path):
        assert lint_source(tmp_path, """\
            class Mailbox:
                def deliver(self, ovl, msg):
                    if not ovl.admit(self.params.backlog_budget):
                        return False
                    self.pending.append(msg)
                    return True
            """) == []

    def test_non_queue_appends_ignored(self, tmp_path):
        assert lint_source(tmp_path, """\
            def collect(results, item):
                results.append(item)
            """) == []

    def test_nested_scope_judged_separately(self, tmp_path):
        # The outer function's len() guard must not grant amnesty to a
        # nested closure that appends with no budget of its own.
        findings = lint_source(tmp_path, """\
            class Router:
                def pump(self, msg):
                    if len(self.inbox) < 8:
                        pass

                    def enqueue(m):
                        self.inbox.append(m)
                    return enqueue
            """)
        assert rules_hit(findings) == ["unbounded-queue"]

    def test_tests_exempt(self, tmp_path):
        assert lint_source(tmp_path, """\
            from collections import deque
            q = deque()
            """, relpath="tests/test_x.py") == []

    def test_suppressible(self, tmp_path):
        assert lint_source(tmp_path, """\
            from collections import deque
            q = deque()  # repro-lint: disable=unbounded-queue (drained every kernel step)
            """) == []


class TestSuppression:
    def test_disable_comment_silences_one_rule(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng(0)  # repro-lint: disable=seeded-rng (root stream)
            """)
        assert findings == []

    def test_disable_is_rule_specific(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng(0)  # repro-lint: disable=wall-clock
            """)
        assert rules_hit(findings) == ["seeded-rng"]

    def test_disable_all_and_lists(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            a = time.time()  # repro-lint: disable=all
            for x in {1}:  # repro-lint: disable=unordered-iter, wall-clock
                pass
            """)
        assert findings == []


class TestFramework:
    def test_findings_sorted_and_rendered(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            b = time.time()
            a = time.monotonic()
            """)
        assert [f.line for f in findings] == [2, 3]
        out = findings[0].render()
        assert out.endswith("wall-clock: host clock read time.time() —"
                            " simulation code must use env.now")
        assert ":2:" in out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rules_hit(findings) == ["parse"]

    def test_single_file_argument(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        f = src / "m.py"
        f.write_text("import time\nt = time.time()\n")
        findings = Linter(default_rules()).run([str(f)])
        assert rules_hit(findings) == ["wall-clock"]

    def test_message_handlers_rule_retired(self):
        # Subsumed by protoflow's registry checks (proto-missing-handler
        # and friends); keeping both would double-report.
        assert "message-handlers" not in {r.name for r in default_rules()}

    def test_legacy_engine_agrees_with_shared_engine(self, tmp_path):
        """Linter (per-file fallback) and index_project (shared parse)
        produce identical findings over the same tree."""
        target = tmp_path / "src" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent("""\
            import time

            def stamp():
                return time.time()

            def dedupe(xs):
                return [x for x in set(xs)]
            """))
        legacy = Linter(default_rules()).run([str(tmp_path)])
        shared = lint_paths([str(tmp_path)])
        assert [f.render() for f in legacy] == [f.render() for f in shared]
        assert rules_hit(shared) == ["unordered-iter", "wall-clock"]

    def test_repo_tree_is_lint_clean(self):
        """The gate CI enforces: the shipped tree has zero findings."""
        root = Path(__file__).resolve().parent.parent
        findings = lint_paths([str(root / "src"), str(root / "tests")])
        assert findings == [], "\n".join(f.render() for f in findings)
