"""Property-based tests for AV tables, policies and the sim kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AVTable,
    ExactPolicy,
    GrantAllPolicy,
    OverdraftPolicy,
    ProportionalPolicy,
    Soda99Policy,
)
from repro.sim import Environment

# ---------------------------------------------------------------------- #
# AV table conservation
# ---------------------------------------------------------------------- #

av_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "take_up_to", "take_all", "hold_cycle"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=40,
)


@given(st.integers(min_value=0, max_value=100), av_ops)
def test_av_table_conserves_and_never_negative(initial, ops):
    """Invariants 1 & 2 at the table level: no volume invented, none < 0."""
    table = AVTable("prop")
    table.define("A", float(initial))
    external = 0.0  # volume currently outside the table (taken or held)

    for op, amount in ops:
        if op == "add":
            # Return some previously removed volume (never invent new).
            back = min(external, amount)
            table.add("A", back)
            external -= back
        elif op == "take_up_to":
            external += table.take_up_to("A", amount)
        elif op == "take_all":
            external += table.take_all("A")
        elif op == "hold_cycle":
            hold = table.hold("A")
            hold.add(table.take_up_to("A", amount))
            if amount % 2 == 0:
                hold.release()  # everything returns
            else:
                consumed = hold.amount
                hold.consume(consumed)
                external += consumed
        assert table.get("A") >= 0.0
        assert table.get("A") + external == initial


# ---------------------------------------------------------------------- #
# policy laws
# ---------------------------------------------------------------------- #

policies = st.sampled_from(
    [
        Soda99Policy(),
        GrantAllPolicy(),
        ExactPolicy(),
        ProportionalPolicy(0.3),
        ProportionalPolicy(1.0),
        OverdraftPolicy(1.5),
    ]
)
volumes = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(float),
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
)


@given(policies, volumes, volumes)
def test_grant_bounds_law(policy, available, requested):
    """0 <= grant <= available, for every policy and every input."""
    grant = policy.grant_amount(available, requested)
    assert 0.0 <= grant <= available + 1e-9


@given(policies, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_request_at_least_shortage(policy, shortage):
    """No policy asks for less than the outstanding shortage."""
    assert policy.request_amount(shortage) >= shortage - 1e-9


@given(st.integers(min_value=1, max_value=10**6))
def test_soda99_integral_grants_make_progress(available):
    """Integral holdings always grant >= 1 unit (no livelock)."""
    grant = Soda99Policy().grant_amount(float(available), 1.0)
    assert grant >= 1.0
    assert float(grant).is_integer()


# ---------------------------------------------------------------------- #
# simulation kernel ordering
# ---------------------------------------------------------------------- #

@given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=30))
def test_events_always_fire_in_time_order(delays):
    """Invariant 6: nondecreasing firing times, FIFO at equal times."""
    env = Environment()
    fired = []

    def waiter(env, idx, delay):
        yield env.timeout(delay)
        fired.append((env.now, idx))

    for idx, delay in enumerate(delays):
        env.process(waiter(env, idx, delay))
    env.run()

    times = [t for t, _ in fired]
    assert times == sorted(times)
    # FIFO among equal-time events: indexes increase within a time group.
    for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_rng_streams_reproducible(seed):
    from repro.sim import RngRegistry

    a = RngRegistry(seed).stream("x").integers(0, 1000, 5).tolist()
    b = RngRegistry(seed).stream("x").integers(0, 1000, 5).tolist()
    assert a == b
