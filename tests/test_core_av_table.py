"""Unit tests for the AV table and holds."""

import pytest

from repro.core import AVTable, AVUndefined, InsufficientAV, InvalidVolume


@pytest.fixture
def table():
    t = AVTable("site1")
    t.define("A", 40.0)
    t.define("B", 0.0)
    return t


class TestDefine:
    def test_defined_is_the_checking_predicate(self, table):
        assert table.defined("A")
        assert not table.defined("ghost")

    def test_double_define_rejected(self, table):
        with pytest.raises(InvalidVolume):
            table.define("A", 1.0)

    def test_negative_initial_rejected(self, table):
        with pytest.raises(InvalidVolume):
            table.define("C", -1.0)

    def test_undefine_returns_volume(self, table):
        assert table.undefine("A") == 40.0
        assert not table.defined("A")

    def test_undefine_unknown(self, table):
        with pytest.raises(AVUndefined):
            table.undefine("ghost")


class TestVolumeMovement:
    def test_get_unknown_raises(self, table):
        with pytest.raises(AVUndefined):
            table.get("ghost")

    def test_add(self, table):
        assert table.add("A", 10) == 50.0

    def test_add_negative_rejected(self, table):
        with pytest.raises(InvalidVolume):
            table.add("A", -1)

    def test_add_undefined_rejected(self, table):
        with pytest.raises(AVUndefined):
            table.add("ghost", 5)

    def test_take_exact(self, table):
        assert table.take("A", 40) == 40
        assert table.get("A") == 0.0

    def test_take_insufficient(self, table):
        with pytest.raises(InsufficientAV) as exc:
            table.take("A", 41)
        assert exc.value.available == 40.0
        assert exc.value.requested == 41
        assert table.get("A") == 40.0  # unchanged

    def test_take_negative_rejected(self, table):
        with pytest.raises(InvalidVolume):
            table.take("A", -5)

    def test_take_up_to_caps_at_available(self, table):
        assert table.take_up_to("A", 100) == 40.0
        assert table.get("A") == 0.0

    def test_take_up_to_partial(self, table):
        assert table.take_up_to("A", 15) == 15.0
        assert table.get("A") == 25.0

    def test_take_all_drains(self, table):
        assert table.take_all("A") == 40.0
        assert table.get("A") == 0.0
        assert table.take_all("A") == 0.0

    def test_total_and_views(self, table):
        assert table.total() == 40.0
        assert table.as_dict() == {"A": 40.0, "B": 0.0}
        assert dict(table.items()) == {"A": 40.0, "B": 0.0}
        assert "A" in table and len(table) == 2


class TestHold:
    def test_hold_accumulate_and_consume_returns_excess(self, table):
        hold = table.hold("A")
        hold.add(table.take_all("A"))
        hold.add(15)  # a peer grant
        hold.consume(45)
        assert table.get("A") == 10.0  # 55 held - 45 consumed
        assert hold.closed

    def test_hold_release_returns_everything(self, table):
        hold = table.hold("A")
        hold.add(table.take_all("A"))
        hold.release()
        assert table.get("A") == 40.0

    def test_consume_more_than_held_raises(self, table):
        hold = table.hold("A")
        hold.add(10)
        with pytest.raises(InsufficientAV):
            hold.consume(11)

    def test_closed_hold_rejects_operations(self, table):
        hold = table.hold("A")
        hold.add(5)
        hold.release()
        for op in (lambda: hold.add(1), lambda: hold.consume(1), hold.release):
            with pytest.raises(InvalidVolume):
                op()

    def test_hold_on_undefined_item(self, table):
        with pytest.raises(AVUndefined):
            table.hold("ghost")

    def test_hold_negative_add_rejected(self, table):
        with pytest.raises(InvalidVolume):
            table.hold("A").add(-1)

    def test_open_holds_counts_consume_and_release(self, table):
        """The live-hold gauge tracks every open against its one close."""
        assert table.open_holds == 0
        first, second = table.hold("A"), table.hold("A")
        assert table.open_holds == 2
        first.add(table.take("A", 10.0))
        first.consume(10.0)
        assert table.open_holds == 1
        second.release()
        assert table.open_holds == 0

    def test_open_holds_unchanged_by_double_close(self, table):
        hold = table.hold("A")
        hold.release()
        assert table.open_holds == 0
        with pytest.raises(InvalidVolume):
            hold.release()
        assert table.open_holds == 0

    def test_holds_carry_id_and_context(self, table):
        plain = table.hold("A")
        tagged = table.hold("A", ctx=("trace-1", 42))
        assert tagged.hold_id > plain.hold_id
        assert plain.ctx is None
        assert tagged.ctx == ("trace-1", 42)
        plain.release()
        tagged.release()

    def test_conservation_through_hold_cycle(self, table):
        """take_all -> hold -> consume/release never creates volume."""
        start = table.total()
        hold = table.hold("A")
        hold.add(table.take_all("A"))
        hold.consume(hold.amount)  # consume everything: nothing returns
        assert table.total() == start - 40.0
