"""Crash-recovery rejoin: a restarted site anti-entropies before serving."""

import pytest

from repro.cluster import build_paper_system
from repro.net import ReliabilityParams

PARAMS = ReliabilityParams(
    ack_timeout=3.0,
    backoff=2.0,
    jitter=0.0,
    max_attempts=2,
    probe_interval=4.0,
    lease_timeout=15.0,
)

ITEM = "item0"


def make_system(**kw):
    defaults = dict(
        n_items=2,
        initial_stock=90.0,
        seed=0,
        request_timeout=5.0,
        reliability=PARAMS,
    )
    defaults.update(kw)
    return build_paper_system(**defaults)


def drain_synced(system, rounds=6):
    """Flush sync backlogs to a fixpoint and drain the queue."""
    for _ in range(rounds):
        for name in sorted(system.sites):
            system.sites[name].accelerator.sync_all()
        system.run()
        if not any(
            system.sites[name].accelerator.unsynced_items()
            for name in sorted(system.sites)
        ):
            return
    raise AssertionError("sync backlog did not drain")


class TestRejoin:
    def test_rejoin_pulls_missed_propagation(self):
        system = make_system()
        system.network.faults.crash("site2")
        proc = system.site("site1").update(ITEM, -5)
        system.run()
        assert proc.value.committed
        # site1's balance owed to the dead site2 is retained, not lost.
        system.site("site1").accelerator.sync_all()
        system.run()
        assert system.site("site2").value(ITEM) == 90.0  # still stale

        system.network.faults.recover("site2")
        system.site("site2").restart()
        system.run()
        # prop.flush pulled the retained balance during rejoin.
        assert system.site("site2").value(ITEM) == 85.0
        drain_synced(system)
        system.check_invariants(quiescent=True)

    def test_updates_wait_for_rejoin_gate(self):
        system = make_system()
        system.network.faults.crash("site1")
        proc0 = system.site("site2").update(ITEM, -5)
        system.run()
        assert proc0.value.committed
        system.site("site2").accelerator.sync_all()
        system.run()

        system.network.faults.recover("site1")
        system.site("site1").restart()
        # Issued in the same step as the restart: must queue behind the
        # rejoin gate instead of racing the anti-entropy.
        accel = system.site("site1").accelerator
        assert accel._rejoin_gate is not None
        proc1 = system.site("site1").update(ITEM, -3)
        system.run()
        assert accel._rejoin_gate is None  # gate opened
        assert proc1.value.committed
        drain_synced(system)
        assert {system.site(n).value(ITEM) for n in sorted(system.sites)} == {
            82.0
        }
        system.check_invariants(quiescent=True)

    def test_crash_mid_rejoin_recovers_on_second_restart(self):
        system = make_system()
        faults = system.network.faults
        faults.crash("site2")
        proc = system.site("site1").update(ITEM, -5)
        system.run()
        assert proc.value.committed
        system.site("site1").accelerator.sync_all()
        system.run()

        faults.recover("site2")
        system.site("site2").restart()

        def crasher(env):
            # The rejoin's first request is in flight at t ~ now + 0.5.
            yield env.timeout(0.5)
            faults.crash("site2")

        system.env.process(crasher(system.env))
        system.run(until=system.env.now + 30.0)
        # The abandoned rejoin must not leave the gate closed forever.
        assert system.site("site2").accelerator._rejoin_gate is None

        faults.recover("site2")
        system.site("site2").restart()
        system.run()
        assert system.site("site2").value(ITEM) == 85.0
        drain_synced(system)
        system.check_invariants(quiescent=True)

    def test_partition_heal_with_retained_balances_on_both_sides(self):
        system = make_system()
        faults = system.network.faults
        faults.partition([["site0"], ["site1", "site2"]])
        pa = system.site("site0").update(ITEM, 10)  # maker mints
        pb = system.site("site1").update(ITEM, -5)
        system.run()
        assert pa.value.committed and pb.value.committed
        for name in sorted(system.sites):
            system.sites[name].accelerator.sync_all()
        system.run(until=system.env.now + 40.0)
        # Cross-partition balances retained on both sides.
        assert system.site("site0").accelerator.unsynced_items() == {ITEM}
        assert system.site("site1").accelerator.unsynced_items() == {ITEM}

        faults.heal()
        system.run()
        drain_synced(system)
        assert {system.site(n).value(ITEM) for n in sorted(system.sites)} == {
            95.0
        }
        system.check_invariants(quiescent=True)

    def test_seed_restart_path_without_reliability(self):
        # reliability off: restart() must behave exactly as the seed did
        # (no gate, no rejoin process).
        system = make_system(reliability=None)
        system.network.faults.crash("site2")
        proc = system.site("site1").update(ITEM, -5)
        system.run()
        assert proc.value.committed
        system.network.faults.recover("site2")
        system.site("site2").restart()
        system.run()
        accel = system.site("site2").accelerator
        assert accel.reliable is None and accel.leases is None
        assert accel._rejoin_gate is None
