"""Fault-mode tests for the Immediate Update protocol (2PC recovery)."""

import pytest

from repro.cluster import build_paper_system
from repro.core import UpdateOutcome


def make_system(**kw):
    defaults = dict(
        n_items=1,
        initial_stock=50.0,
        regular_fraction=0.0,
        seed=0,
        request_timeout=5.0,
    )
    defaults.update(kw)
    return build_paper_system(**defaults)


ITEM = "item0"


class TestLiveMembership:
    def test_known_crashed_participant_is_excluded(self):
        """Crash detection is out of band (live_peers): the update
        commits among the live members; the dead site is stale."""
        system = make_system()
        system.network.faults.crash("site2")
        proc = system.update("site1", ITEM, -5)
        system.run()
        assert proc.value.committed
        assert system.site("site0").value(ITEM) == 45.0
        assert system.site("site1").value(ITEM) == 45.0
        assert system.site("site2").value(ITEM) == 50.0  # missed it

    def test_restart_catches_up_missed_immediate_updates(self):
        system = make_system()
        system.network.faults.crash("site2")
        p1 = system.update("site1", ITEM, -5)
        system.run()
        assert p1.value.committed

        system.site("site2").restart()
        system.run()
        # Snapshot pull from the base brought site2 up to date.
        for site in system.sites.values():
            assert site.value(ITEM) == 45.0
        system.check_invariants()

    def test_racing_crash_aborts_via_prepare_timeout(self):
        """A crash the coordinator has not observed yet (it happens
        while the prepare is in flight) falls back to the timeout path."""
        system = make_system()
        proc = system.update("site1", ITEM, -5)

        def crasher(env):
            # site2's prepare is in flight at t in (2, 3).
            yield env.timeout(2.5)
            system.network.faults.crash("site2")

        system.env.process(crasher(system.env))
        system.run()
        assert proc.value.outcome is UpdateOutcome.ABORTED
        # Live sites rolled back; locks free.
        assert system.site("site0").value(ITEM) == 50.0
        assert system.site("site1").value(ITEM) == 50.0
        for name in ("site0", "site1"):
            assert not system.site(name).accelerator.locks.is_locked(ITEM)
        assert not system.site("site0").accelerator.immediate._pending


class TestDecisionLog:
    def test_commit_decision_logged_before_phase2(self):
        system = make_system()
        proc = system.update("site1", ITEM, -5)
        system.run()
        imm = system.site("site1").accelerator.immediate
        assert list(imm.decisions.values()) == ["commit"]
        assert not imm.in_progress

    def test_abort_decision_logged(self):
        system = make_system()
        proc = system.update("site1", ITEM, -51)  # negative -> abort
        system.run()
        imm = system.site("site1").accelerator.immediate
        assert list(imm.decisions.values()) == ["abort"]

    def test_status_of_unknown_token_is_presumed_abort(self):
        system = make_system()
        ep = system.site("site2").endpoint

        def client(env):
            return (
                yield ep.request(
                    "site1", "imm.status", {"token": "imm:999:site1"}
                )
            )

        proc = system.env.process(client(system.env))
        system.run()
        assert proc.value == {"decision": "abort"}


class TestWatchdog:
    def test_orphaned_participant_self_resolves(self):
        """A participant whose commit was lost (not crashed itself!)
        learns the outcome through its watchdog."""
        system = make_system()
        proc = system.update("site1", ITEM, -5)

        # Drop exactly the commit delivery to site0 by crashing site0
        # briefly around it: prepare for site0 happens at t~1; its
        # commit arrives ~7. Window [6, 8] loses only the commit.
        def blinker(env):
            yield env.timeout(6.0)
            system.network.faults.crash("site0")
            yield env.timeout(2.0)
            system.network.faults.recover("site0")

        system.env.process(blinker(system.env))
        system.run()
        assert proc.value.committed
        # The bounded resends and/or the watchdog resolve site0.
        for site in system.sites.values():
            assert site.value(ITEM) == 45.0
        assert not system.site("site0").accelerator.immediate._pending
        system.check_invariants()

    def test_watchdog_waits_while_coordinator_pending(self):
        """handle_status answers 'pending' during a live decision."""
        system = make_system()
        imm1 = system.site("site1").accelerator.immediate
        imm1.in_progress.add("imm:7:site1")
        ep = system.site("site2").endpoint

        def client(env):
            return (
                yield ep.request(
                    "site1", "imm.status", {"token": "imm:7:site1"}
                )
            )

        proc = system.env.process(client(system.env))
        system.run()
        assert proc.value == {"decision": "pending"}
