"""Differential kernel test layer: columnar vs object, byte for byte.

The columnar kernel (:mod:`repro.core.columns`) re-lays the protocol's
hot state — AV tables, belief tables, replica stores — as catalog-
indexed struct-of-arrays columns. Its contract is total behavioural
equivalence with the dict-of-objects reference kernel: same results,
same monitor events, same floats (repr-exact), same iteration order.

These tests enforce the contract end to end by running **both kernels
side by side on identical inputs** and asserting byte-identical
digests:

* every experiment sweep grid the bench covers (fig6, table1, chaos,
  scale — each in its ``-small`` size),
* 200+ generated fuzz cases (schedules, faults, perturbations,
  topologies, surges — the whole mutation vocabulary),
* the planted ``col-alias`` bug, which corrupts a *column neighbour*
  while reporting the right item to the monitor: the conservation
  oracles must catch it on the columnar kernel, the fuzzer must find
  and shrink it, and the object kernel (which has no columns to alias)
  must stay clean on the very same schedule.

Sanitizer cleanliness rides along: the scale grid and every fuzz case
run with the protocol sanitizer attached, and any violation is a test
failure on either kernel.
"""

from __future__ import annotations

import pytest

from repro.core.columns import DEFAULT_KERNEL, KERNEL_ENV, KERNELS
from repro.perf import build_grid, run_sweep
from repro.testkit import make_case, run_case, run_fuzz

#: fuzz cases per campaign in the side-by-side sweep (ISSUE 10 floor:
#: 200+); short schedules keep the whole sweep a few seconds
N_FUZZ_CASES = 200
FUZZ_N_OPS = 12

#: the grid sizes the differential covers — one per experiment family
GRIDS = ("fig6-small", "table1-small", "chaos-small", "scale-small")


def _sweep_canonical(grid: str, kernel: str, monkeypatch) -> "tuple":
    """Run a whole sweep grid under ``kernel``; return its canonical JSON.

    The kernel is pinned through the ``REPRO_KERNEL`` environment
    override, the same lever an operator has, so the test exercises the
    real resolution path (config ``None`` → env → default).
    """
    monkeypatch.setenv(KERNEL_ENV, kernel)
    tasks = build_grid(grid, root_seed=0)
    sweep = run_sweep(tasks, shards=1, grid=grid, root_seed=0)
    return sweep.canonical(), sweep


class TestGridDifferential:
    """Both kernels over every experiment grid: byte-identical sweeps."""

    @pytest.mark.parametrize("grid", GRIDS)
    def test_sweep_byte_identical_across_kernels(self, grid, monkeypatch):
        columnar, _ = _sweep_canonical(grid, "columnar", monkeypatch)
        objectk, _ = _sweep_canonical(grid, "object", monkeypatch)
        assert columnar == objectk

    def test_scale_grid_sanitizer_clean_on_both_kernels(self, monkeypatch):
        # The scale tasks run with the protocol sanitizer attached and
        # report violation counts in their payloads; zero on both sides.
        for kernel in KERNELS:
            _, sweep = _sweep_canonical("scale-small", kernel, monkeypatch)
            for payload in sweep.results:
                counters = payload.get("counters", {})
                assert counters.get("violations", 0) == 0, (kernel, payload)

    def test_env_override_reaches_the_sweep(self, monkeypatch):
        # Guard against the differential silently comparing the default
        # kernel with itself: the env override must actually select the
        # kernel inside task execution.
        from repro.cluster import DistributedSystem, paper_config
        from repro.core.columns import resolve_kernel

        monkeypatch.setenv(KERNEL_ENV, "object")
        assert resolve_kernel(None) == "object"
        system = DistributedSystem.build(paper_config(n_items=2))
        from repro.core.av_table import AVTable

        assert isinstance(
            system.site("site0").av_table, AVTable
        )
        monkeypatch.delenv(KERNEL_ENV)
        assert resolve_kernel(None) == DEFAULT_KERNEL


# --------------------------------------------------------------------- #
# fuzz-case differential
# --------------------------------------------------------------------- #


def _outcome_surface(outcome) -> dict:
    """Everything a case produced except the case itself.

    The two runs differ *only* in the ``kernel`` field of the case, so
    the case (and the digest, which covers it) is excluded; all
    observable behaviour — oracle findings, sanitizer warnings, update
    tags, replica end state, counters — must match exactly.
    """
    return {
        "ok": outcome.ok,
        "fingerprint": outcome.fingerprint,
        "findings": [
            (v.rule, v.item, v.site, v.time, v.detail)
            for v in outcome.findings
        ],
        "warnings": outcome.warnings,
        "update_tags": outcome.update_tags,
        "replicas": outcome.replicas,
        "counters": outcome.counters,
    }


def test_fuzz_cases_byte_identical_across_kernels():
    """200+ fuzz cases, each run on both kernels: identical surfaces.

    Covers the whole generated vocabulary — faults, perturbation
    vectors, topology relayouts, overload surges — and doubles as the
    sanitizer sweep: a finding on either kernel that the other does not
    reproduce is a kernel bug by definition; a finding on *both* is a
    protocol bug the clean-campaign tests would already have caught.
    """
    mismatches = []
    dirty = []
    for index in range(N_FUZZ_CASES):
        case = make_case(2026, index, n_ops=FUZZ_N_OPS)
        col = run_case(case.with_(kernel="columnar"))
        obj = run_case(case.with_(kernel="object"))
        if _outcome_surface(col) != _outcome_surface(obj):
            mismatches.append(index)
        if not col.ok:
            dirty.append((index, col.rules))
    assert not mismatches, f"kernel divergence on case(s) {mismatches}"
    assert not dirty, f"oracle/sanitizer findings on clean cases: {dirty}"


def test_fuzzer_draws_both_kernels():
    # ~30% of generated cases pin the object kernel; a campaign of 60
    # cases that drew only one kernel means the toggle is dead.
    kernels = {make_case(5, i).kernel for i in range(60)}
    assert kernels == {"", "object"}


# --------------------------------------------------------------------- #
# planted column-aliasing bug
# --------------------------------------------------------------------- #


class TestPlantedColumnAliasBug:
    """``col-alias`` credits a neighbouring column slot on ``add``.

    The monitor still sees the requested item, so only end-state
    oracles (conservation against the global ledger) can catch it —
    exactly the bug class a columnar layout can introduce and the
    object kernel cannot.
    """

    def test_fuzzer_finds_and_shrinks_col_alias(self, tmp_path):
        report = run_fuzz(
            root_seed=1,
            max_cases=24,
            n_ops=FUZZ_N_OPS,
            inject="col-alias",
            artifact_dir=str(tmp_path),
        )
        assert not report.ok
        assert report.shrink is not None
        shrunk = report.shrink.case
        assert shrunk.inject == "col-alias"
        # The bug lives in the columnar add path; a case that found it
        # cannot have been pinned to the object kernel.
        assert shrunk.kernel != "object"
        assert "oracle.conservation" in report.shrink.rules
        assert report.replay_ok is True

        # Differential proof: the very same shrunk schedule is clean on
        # the object kernel (no columns to alias) and still dirty on
        # the columnar one.
        assert run_case(shrunk.with_(kernel="object")).ok
        assert not run_case(shrunk.with_(kernel="columnar")).ok

    def test_col_alias_is_noop_on_object_kernel(self):
        from repro.core.columns import make_av_table

        table = make_av_table("site1", kernel="object", inject="col-alias")
        table.define("item0", 10.0)
        table.define("item1", 0.0)
        table.add("item1", 5.0)
        assert table.get("item0") == 10.0
        assert table.get("item1") == 5.0

    def test_col_alias_corrupts_neighbour_on_columnar_kernel(self):
        from repro.core.columns import make_av_table

        table = make_av_table("site1", kernel="columnar", inject="col-alias")
        table.define("item0", 10.0)
        table.define("item1", 0.0)
        table.add("item1", 5.0)  # lands on item0's column slot
        assert table.get("item0") == 15.0
        assert table.get("item1") == 0.0
