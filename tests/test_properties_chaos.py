"""Chaos property test: random operations + faults, invariants always hold.

A hypothesis rule machine interleaves updates, batched syncs, crashes
and recoveries on a live system and re-checks the AV-conservation and
non-negativity invariants after every step. Immediate updates are
excluded (the primary-copy protocol assumes reachable participants and
would need timeout machinery under crashes — a documented limitation);
the Delay path is exactly what the paper claims survives faults.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cluster import build_paper_system

SITES = ["site0", "site1", "site2"]
ITEMS = ["item0", "item1"]


class ChaosMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = build_paper_system(
            n_items=2,
            initial_stock=80.0,
            seed=7,
            request_timeout=10.0,  # crashed grantors must not hang updates
        )

    # -------------------------------------------------------------- #
    # rules
    # -------------------------------------------------------------- #

    @rule(
        site=st.sampled_from(SITES),
        item=st.sampled_from(ITEMS),
        delta=st.integers(min_value=-30, max_value=30),
    )
    def update(self, site, item, delta):
        if self.system.sites[site].crashed:
            return
        proc = self.system.update(site, item, float(delta))
        self.system.run()
        # The process must terminate (committed/rejected/failed) — a
        # hang would leave it untriggered after the queue drained.
        assert proc.triggered

    @rule(site=st.sampled_from(SITES))
    def sync(self, site):
        if self.system.sites[site].crashed:
            return
        self.system.sites[site].accelerator.sync_all()
        self.system.run()

    @rule(site=st.sampled_from(SITES))
    def crash(self, site):
        # Keep at least one site alive so some progress stays possible.
        alive = [s for s in SITES if not self.system.sites[s].crashed]
        if len(alive) > 1 or site not in alive:
            self.system.network.faults.crash(site)

    @rule(site=st.sampled_from(SITES))
    def recover(self, site):
        self.system.network.faults.recover(site)
        self.system.run()

    @rule(site=st.sampled_from(SITES))
    def restart(self, site):
        """Full restart path: recovery + resolution + sync catch-up."""
        if not self.system.sites[site].crashed:
            return
        self.system.sites[site].restart()
        self.system.run()

    # -------------------------------------------------------------- #
    # invariants
    # -------------------------------------------------------------- #

    @invariant()
    def conservation_and_nonnegativity(self):
        ledger = self.system.collector.ledger
        for item in ITEMS:
            true_value = ledger.true_value(item)
            assert true_value >= 0, f"{item} ground truth negative"
            # AV may be temporarily parked in holds of FAILED (crashed)
            # updates, so the table total is <= the bound — never above.
            assert self.system.av_total(item) <= true_value + 1e-9

    @invariant()
    def no_negative_av(self):
        for site in self.system.sites.values():
            for item, volume in site.av_table.items():
                assert volume >= 0, (site.name, item, volume)

    def teardown(self):
        # Heal everything, sync everyone, drain: replicas converge.
        for site in SITES:
            self.system.network.faults.recover(site)
        self.system.run()
        for site in self.system.sites.values():
            site.accelerator.sync_all()
        self.system.run()
        ledger = self.system.collector.ledger
        for item in ITEMS:
            for site in self.system.sites.values():
                assert site.store.value(item) == ledger.true_value(item), (
                    f"{site.name} did not converge on {item}"
                )


TestChaosMachine = ChaosMachine.TestCase
TestChaosMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
