"""Unit tests for RNG streams and the tracer."""

import pytest

from repro.sim import RngRegistry, TraceRecord, Tracer, NullTracer


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_independent_of_request_order(self):
        r1 = RngRegistry(7)
        r2 = RngRegistry(7)
        a1 = r1.stream("a")
        _ = r1.stream("b")
        b2 = r2.stream("b")
        a2 = r2.stream("a")
        assert a1.integers(0, 1000, 10).tolist() == a2.integers(0, 1000, 10).tolist()
        assert r1.stream("b").integers(0, 1000, 10).tolist() == b2.integers(
            0, 1000, 10
        ).tolist()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").integers(0, 10**9, 10).tolist()
        b = RngRegistry(2).stream("x").integers(0, 10**9, 10).tolist()
        assert a != b

    def test_different_names_differ(self):
        r = RngRegistry(1)
        assert (
            r.stream("x").integers(0, 10**9, 10).tolist()
            != r.stream("y").integers(0, 10**9, 10).tolist()
        )

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            RngRegistry("abc")

    def test_container_protocol(self):
        r = RngRegistry(0)
        assert "x" not in r and len(r) == 0
        r.stream("x")
        assert "x" in r and len(r) == 1 and list(r) == ["x"]


class TestTracer:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit(1.0, "msg.send", "site0", {"to": "site1"})
        t.emit(2.0, "msg.recv", "site1", {"frm": "site0"})
        t.emit(3.0, "msg.send", "site1", {"to": "site0"})
        assert len(t) == 3
        assert len(t.filter(kind="msg.send")) == 2
        assert len(t.filter(source="site1")) == 2
        assert len(t.filter(kind="msg.send", source="site1")) == 1
        assert (
            len(t.filter(predicate=lambda r: r.time > 1.5)) == 2
        )

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(1.0, "x", "y")
        assert len(t) == 0

    def test_null_tracer(self):
        t = NullTracer()
        t.emit(1.0, "x", "y")
        assert len(t) == 0

    def test_max_records_drops_and_counts(self):
        t = Tracer(max_records=2)
        for i in range(5):
            t.emit(float(i), "k", "s")
        assert len(t) == 2 and t.dropped == 3

    def test_fingerprint_sensitive_to_order_and_content(self):
        t1, t2, t3 = Tracer(), Tracer(), Tracer()
        t1.emit(1.0, "a", "s")
        t1.emit(2.0, "b", "s")
        t2.emit(2.0, "b", "s")
        t2.emit(1.0, "a", "s")
        t3.emit(1.0, "a", "s")
        t3.emit(2.0, "b", "s")
        assert t1.fingerprint() == t3.fingerprint()
        assert t1.fingerprint() != t2.fingerprint()

    def test_clear(self):
        t = Tracer(max_records=1)
        t.emit(1.0, "a", "s")
        t.emit(2.0, "a", "s")
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_record_str(self):
        rec = TraceRecord(1.5, "msg.send", "site0", "x")
        assert "msg.send" in str(rec) and "site0" in str(rec)


class TestTracerKindPrefix:
    def test_kind_prefix_matches_family(self):
        t = Tracer()
        t.emit(1.0, "av.request", "site1")
        t.emit(2.0, "av.grant", "site0")
        t.emit(3.0, "imm.commit", "site1")
        assert len(t.filter(kind_prefix="av.")) == 2
        assert len(t.filter(kind_prefix="imm.")) == 1
        assert len(t.filter(kind_prefix="av.", source="site0")) == 1

    def test_kind_prefix_combines_with_exact_kind(self):
        t = Tracer()
        t.emit(1.0, "av.request", "s")
        t.emit(2.0, "av.grant", "s")
        assert len(t.filter(kind="av.grant", kind_prefix="av.")) == 1


class TestTracerSkipFreeFingerprint:
    def test_divergence_past_cap_still_detected(self):
        """Two runs identical up to the cap but different after it must
        fingerprint differently (drops are hashed, not skipped)."""
        a, b = Tracer(max_records=2), Tracer(max_records=2)
        for t in (a, b):
            t.emit(1.0, "k", "s", "same")
            t.emit(2.0, "k", "s", "same")
        a.emit(3.0, "k", "s", "diverges-here")
        b.emit(3.0, "k", "s", "differently")
        assert a.records == b.records  # stored prefixes identical
        assert a.fingerprint() != b.fingerprint()

    def test_identical_runs_with_drops_match(self):
        def build():
            t = Tracer(max_records=2)
            for i in range(6):
                t.emit(float(i), "k", "s", i)
            return t.fingerprint()

        assert build() == build()

    def test_dropped_count_contributes(self):
        a, b = Tracer(max_records=1), Tracer(max_records=1)
        a.emit(1.0, "k", "s")
        b.emit(1.0, "k", "s")
        b.emit(1.0, "k", "s")  # extra dropped copy; acc hash alone could
        assert a.fingerprint() != b.fingerprint()

    def test_clear_resets_dropped_hash(self):
        t = Tracer(max_records=1)
        t.emit(1.0, "a", "s")
        t.emit(2.0, "b", "s")
        t.clear()
        t.emit(1.0, "a", "s")
        fresh = Tracer(max_records=1)
        fresh.emit(1.0, "a", "s")
        assert t.fingerprint() == fresh.fingerprint()
