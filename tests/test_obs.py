"""Tests for the observability layer: spans, registry, sampler, export."""

import json
import math
import statistics

import pytest

from repro.cluster import build_paper_system
from repro.experiments import make_paper_trace, run_observed
from repro.obs import (
    NULL_OBS,
    NULL_SPAN,
    MetricRegistry,
    NullSpanRecorder,
    Observability,
    SpanRecorder,
    StreamingHistogram,
    TimeSeriesStore,
    chrome_trace_events,
    jsonl_lines,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.workload import run_closed


class TestSpanRecorder:
    def test_parent_links_and_trace_inheritance(self):
        rec = SpanRecorder()
        root = rec.start("update", "site1", 0.0, trace="t-1")
        child = rec.start("av.request", "site1", 1.0, parent=root)
        assert child.trace_id == "t-1"
        assert child.parent_id == root.span_id
        assert rec.children(root) == [child]
        assert rec.roots() == [root]

    def test_raw_span_id_parent_for_cross_site_context(self):
        rec = SpanRecorder()
        root = rec.start("av.request", "site1", 0.0)
        remote = rec.start(
            "av.grant", "site0", 1.0, trace=root.trace_id, parent=root.span_id
        )
        assert remote.parent_id == root.span_id
        assert remote.trace_id == root.trace_id

    def test_finish_sets_end_and_attrs(self):
        rec = SpanRecorder()
        span = rec.start("x", "s", 2.0, item="a")
        span.finish(5.0, outcome="committed")
        assert span.finished and span.duration == 3.0
        assert span.attrs == {"item": "a", "outcome": "committed"}

    def test_null_parent_means_root(self):
        rec = SpanRecorder()
        span = rec.start("x", "s", 0.0, parent=NULL_SPAN)
        assert span.parent_id is None

    def test_max_spans_cap_returns_null_span(self):
        rec = SpanRecorder(max_spans=1)
        first = rec.start("a", "s", 0.0)
        second = rec.start("b", "s", 0.0)
        assert first is not NULL_SPAN and second is NULL_SPAN
        assert rec.dropped == 1 and len(rec) == 1

    def test_dropped_spans_change_fingerprint(self):
        full = SpanRecorder()
        capped = SpanRecorder(max_spans=1)
        for rec in (full, capped):
            rec.start("a", "s", 0.0).finish(1.0)
            rec.start("b", "s", 0.0).finish(1.0)
        assert full.fingerprint() != capped.fingerprint()

    def test_fingerprint_deterministic_and_order_sensitive(self):
        def build(order):
            rec = SpanRecorder()
            for name in order:
                rec.start(name, "s", 0.0).finish(1.0)
            return rec.fingerprint()

        assert build(["a", "b"]) == build(["a", "b"])
        assert build(["a", "b"]) != build(["b", "a"])

    def test_null_recorder_records_nothing(self):
        rec = NullSpanRecorder()
        span = rec.start("x", "s", 0.0, item="a")
        assert span is NULL_SPAN
        span.finish(1.0, ignored=True)  # no-op, must not raise
        assert len(rec) == 0 and not rec.enabled

    def test_names_and_traces_views(self):
        rec = SpanRecorder()
        r1 = rec.start("update", "s", 0.0)
        rec.start("apply", "s", 0.0, parent=r1)
        rec.start("update", "s", 1.0)
        assert rec.names() == {"update": 2, "apply": 1}
        assert len(rec.traces()) == 2


class TestStreamingHistogram:
    @pytest.mark.parametrize(
        "samples",
        [
            [float(v) for v in range(1, 1001)],
            [1.0005 ** i for i in range(2000)],  # log-spaced
            [0.0] * 50 + [float(v) for v in range(1, 251)],  # zero-heavy
        ],
    )
    def test_quantiles_match_statistics_within_bucket_error(self, samples):
        hist = StreamingHistogram("lat")
        for v in samples:
            hist.observe(v)
        # statistics.quantiles with n=100 gives exclusive percentiles;
        # allow the histogram's bucket error plus one rank of slack.
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        rel_err = (hist.growth - 1.0) * 1.5  # bucket width + midpoint slack
        for q, exact in ((0.50, cuts[49]), (0.90, cuts[89]), (0.99, cuts[98])):
            estimate = hist.quantile(q)
            if exact == 0.0:
                assert estimate == 0.0
            else:
                assert abs(estimate - exact) / exact <= rel_err + 0.01, (
                    q, estimate, exact
                )

    def test_min_max_mean_exact(self):
        hist = StreamingHistogram("lat")
        samples = [3.0, 1.0, 4.0, 1.5, 9.25]
        for v in samples:
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == len(samples)
        assert s["max"] == max(samples)
        assert hist.min == min(samples)
        assert s["mean"] == pytest.approx(statistics.mean(samples))

    def test_empty_summary_is_zeroed(self):
        assert StreamingHistogram("x").summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
            "p99": 0.0, "max": 0.0,
        }

    def test_rejects_negative_samples_and_bad_growth(self):
        with pytest.raises(ValueError):
            StreamingHistogram("x").observe(-1.0)
        with pytest.raises(ValueError):
            StreamingHistogram("x", growth=1.0)

    def test_all_zeros(self):
        hist = StreamingHistogram("x")
        for _ in range(10):
            hist.observe(0.0)
        assert hist.quantile(0.5) == 0.0 and hist.summary()["max"] == 0.0


class TestStreamingHistogramMerge:
    """The shard-aggregation determinism guarantee, property-style."""

    SAMPLE_SETS = [
        [float(v) for v in range(1, 201)],
        [1.0007 ** i for i in range(500)],
        [0.0] * 25 + [0.5, 2.0, 2.0, 1e-9, 1e9],
        [],
    ]

    @staticmethod
    def _fill(samples):
        hist = StreamingHistogram("lat")
        for v in samples:
            hist.observe(v)
        return hist

    @pytest.mark.parametrize("samples", SAMPLE_SETS)
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_any_shard_split_merges_to_single_histogram(
        self, samples, shards
    ):
        whole = self._fill(samples)
        parts = [
            self._fill(samples[i::shards]) for i in range(shards)
        ]
        merged = StreamingHistogram("lat")
        for part in parts:
            merged.merge(part)
        assert merged.buckets == whole.buckets
        assert merged.zeros == whole.zeros
        assert merged.count == whole.count
        assert (merged.min, merged.max) == (whole.min, whole.max)
        assert merged.total == pytest.approx(whole.total)

    def test_ordered_fold_is_byte_deterministic(self):
        # Same shard snapshots, merged twice in the same (task-index)
        # order: serialised state must match byte for byte — this is
        # what makes sweep telemetry shard-count invariant.
        samples = [1.0003 ** i for i in range(300)]
        shards = [self._fill(samples[i::4]) for i in range(4)]
        encodings = []
        for _ in range(2):
            acc = StreamingHistogram("lat")
            for shard in shards:
                acc.merge(shard)
            encodings.append(
                json.dumps(acc.to_dict(), sort_keys=True,
                           separators=(",", ":"))
            )
        assert encodings[0] == encodings[1]

    def test_merge_returns_self_for_chaining(self):
        a, b = self._fill([1.0]), self._fill([2.0])
        assert a.merge(b) is a
        assert a.count == 2

    def test_growth_mismatch_rejected(self):
        with pytest.raises(ValueError, match="growth"):
            StreamingHistogram("a", growth=1.05).merge(
                StreamingHistogram("b", growth=1.1)
            )

    def test_to_dict_round_trip(self):
        hist = self._fill([0.0, 0.5, 3.0, 3.0, 1e6])
        clone = StreamingHistogram.from_dict("lat", hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.quantile(0.5) == hist.quantile(0.5)

    def test_empty_serialises_without_infinities(self):
        data = StreamingHistogram("lat").to_dict()
        assert data["min"] is None and data["max"] is None
        json.dumps(data, allow_nan=False)  # strict JSON


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_counter_rejects_decrease(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_rows_and_dicts_cover_all_kinds(self):
        reg = MetricRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0, now=2.0)
        reg.histogram("h").observe(1.0)
        kinds = {row[1] for row in reg.rows()}
        assert kinds == {"counter", "gauge", "histogram"}
        dicts = {d["metric"]: d for d in reg.to_dicts()}
        assert dicts["c"]["value"] == 3
        assert dicts["g"]["updated_at"] == 2.0
        assert dicts["h"]["count"] == 1


class TestObservabilityHub:
    def test_disabled_hub_is_free(self):
        hub = Observability(enabled=False)
        hub.count("x")
        hub.observe_value("y", 1.0)
        hub.gauge_set("z", 2.0)
        assert len(hub.registry) == 0
        assert isinstance(hub.recorder, NullSpanRecorder)

    def test_null_obs_shared_and_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.recorder.start("x", "s", 0.0) is NULL_SPAN

    def test_enabled_hub_records(self):
        hub = Observability()
        hub.count("x", 2)
        hub.observe_value("y", 1.5)
        assert hub.registry.counter("x").value == 2
        assert hub.registry.histogram("y").count == 1


class TestTimeSeriesStore:
    def test_record_and_views(self):
        store = TimeSeriesStore()
        store.record("a", 0.0, 1.0)
        store.record("a", 5.0, 2.0)
        store.record("b", 0.0, 9.0)
        assert store.series("a") == [(0.0, 1.0), (5.0, 2.0)]
        assert store.names() == ["a", "b"]
        assert store.last("a") == 2.0 and store.last("missing") == 0.0
        assert "a" in store and len(store) == 2


class TestExport:
    def _spans(self):
        rec = SpanRecorder()
        root = rec.start("update", "site1", 0.0, item="item0")
        rec.start("av.request", "site1", 0.5, parent=root).finish(2.5)
        root.finish(3.0, outcome="committed")
        return rec

    def test_chrome_events_structure(self):
        events = chrome_trace_events(self._spans())
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["args"]["name"] == "site1"
        assert len(xs) == 2
        req = next(e for e in xs if e["name"] == "av.request")
        assert req["ts"] == 500.0 and req["dur"] == 2000.0  # 1 unit = 1 ms
        assert "parent_id" in req["args"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._spans())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] and doc["displayTimeUnit"] == "ms"

    def test_jsonl_round_trip(self, tmp_path):
        reg = MetricRegistry()
        reg.counter("c").inc()
        store = TimeSeriesStore()
        store.record("s", 1.0, 2.0)
        path = tmp_path / "out.jsonl"
        n = write_jsonl(str(path), self._spans(), reg, store)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n == 4  # 2 spans + 1 metric + 1 sample
        assert {l["type"] for l in lines} == {"span", "metric", "sample"}

    def test_render_summary_sections(self):
        hub = Observability()
        hub.recorder.start("update", "s", 0.0).finish(1.0)
        hub.count("c")
        hub.series.record("ts", 0.0, 1.0)
        text = render_summary(hub, title="T")
        assert "spans" in text and "metrics" in text and "time series" in text

    def test_render_summary_empty(self):
        assert "nothing recorded" in render_summary(Observability())


class TestObservedSystem:
    def test_unobserved_system_records_no_spans(self):
        system = build_paper_system(n_items=5, seed=3)
        trace = make_paper_trace(50, seed=3, n_items=5)
        run_closed(system, trace)
        assert system.obs is NULL_OBS
        assert len(system.obs.recorder) == 0

    def test_unobserved_collectors_do_not_share_a_registry(self):
        a = build_paper_system(n_items=5, seed=3)
        b = build_paper_system(n_items=5, seed=3)
        assert a.collector.registry is not b.collector.registry
        assert a.collector.registry is not NULL_OBS.registry

    def test_av_transfer_chain_reconstructs(self):
        """The acceptance chain: request -> grant -> apply, one trace."""
        run = run_observed("fig6", n_updates=200, seed=0, n_items=10)
        rec = run.obs.recorder
        chains = 0
        for trace_id, spans in rec.traces().items():
            by_name = {}
            for s in spans:
                by_name.setdefault(s.name, []).append(s)
            if not {"av.request", "av.grant", "delay.apply"} <= set(by_name):
                continue
            req_ids = {s.span_id for s in by_name["av.request"]}
            assert all(
                g.parent_id in req_ids for g in by_name["av.grant"]
            ), trace_id
            root = next(s for s in spans if s.name == "update")
            assert all(
                s.trace_id == root.trace_id for s in spans
            )
            chains += 1
        assert chains >= 1

    def test_observed_run_exports(self, tmp_path):
        run = run_observed("fig6", n_updates=60, seed=1, n_items=5)
        doc = run.write_chrome_trace(str(tmp_path / "t.json"))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        n = run.write_jsonl(str(tmp_path / "t.jsonl"))
        assert n > 0
        assert "spans" in run.render()

    def test_sampler_series_recorded(self):
        run = run_observed(
            "fig6", n_updates=100, seed=2, n_items=5, sample_interval=10.0
        )
        series = run.obs.series
        for prefix in ("av.level", "belief.error", "belief.age",
                       "lock.wait", "sync.backlog"):
            for site in ("site0", "site1", "site2"):
                assert f"{prefix}.{site}" in series, prefix
        assert len(series.series("av.level.site0")) >= 2

    def test_sync_spans_present_in_lazy_mode(self):
        run = run_observed("fig6", n_updates=150, seed=0, n_items=5,
                           sync_interval=20.0)
        names = run.obs.recorder.names()
        assert names.get("sync.pass", 0) > 0
        assert names.get("sync.push", 0) > 0

    def test_registry_shared_with_collector(self):
        run = run_observed("fig6", n_updates=60, seed=1, n_items=5)
        system = run.system
        assert system.collector.registry is system.obs.registry
        committed = system.collector.registry.counter("updates.committed")
        assert committed.value == sum(1 for r in run.results if r.committed)

    def test_max_spans_cap_respected(self):
        run = run_observed("fig6", n_updates=80, seed=0, n_items=5,
                           max_spans=50)
        rec = run.obs.recorder
        assert len(rec) == 50 and rec.dropped > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_observed("bogus", n_updates=10)


class TestSpanDeterminism:
    def test_same_seed_same_span_fingerprint(self):
        def run():
            r = run_observed("fig6", n_updates=150, seed=11, n_items=5)
            return r.obs.recorder.fingerprint(), len(r.obs.recorder)

        assert run() == run()

    def test_different_seed_different_fingerprint(self):
        a = run_observed("fig6", n_updates=150, seed=11, n_items=5)
        b = run_observed("fig6", n_updates=150, seed=12, n_items=5)
        assert a.obs.recorder.fingerprint() != b.obs.recorder.fingerprint()

    def test_fingerprint_deterministic_under_faults(self):
        """Same seed + same injected crash window => identical span tree."""

        def run():
            system = build_paper_system(
                n_items=5, seed=13, observe=True, request_timeout=5.0
            )
            trace = make_paper_trace(150, seed=13, n_items=5)
            faults = system.network.faults

            def chaos(env):
                yield env.timeout(10.0)
                faults.crash("site2")
                yield env.timeout(40.0)
                system.sites["site2"].restart()

            system.env.process(chaos(system.env), name="chaos")
            results = run_closed(system, trace)
            assert len(results) == 150
            return system.obs.recorder.fingerprint(), len(system.obs.recorder)

        first, second = run(), run()
        assert first == second
        assert first[1] > 0


class TestCollectorRegistryIntegration:
    def test_count_fast_paths_match_scan(self):
        from repro.core.types import UpdateKind, UpdateOutcome

        system = build_paper_system(n_items=5, seed=4)
        trace = make_paper_trace(120, seed=4, n_items=5)
        run_closed(system, trace)
        collector = system.collector
        for kind in (None, UpdateKind.DELAY, UpdateKind.IMMEDIATE):
            for outcome in (None, UpdateOutcome.COMMITTED,
                            UpdateOutcome.REJECTED):
                expected = sum(
                    1 for r in collector.results
                    if (kind is None or r.kind is kind)
                    and (outcome is None or r.outcome is outcome)
                )
                assert collector.count(kind, outcome) == expected

    def test_latency_summary_matches_exact_percentiles(self):
        system = build_paper_system(n_items=5, seed=4)
        trace = make_paper_trace(200, seed=4, n_items=5)
        run_closed(system, trace)
        collector = system.collector
        latencies = collector.latencies()
        summary = collector.latency_summary()
        assert summary["count"] == len(latencies)
        assert summary["max"] == max(latencies)
        assert summary["mean"] == pytest.approx(statistics.mean(latencies))
