"""Randomized properties for the robustness layer, driven through the
testkit's schedule-perturbation hooks (ISSUE 5 satellite).

Both properties run the *correct* protocol through
:func:`repro.testkit.run_case` over hypothesis-drawn fault windows and
perturbation vectors, then assert the strong end state:

* **lease ack-vs-expiry** (``repro.core.leases``): whatever interleaving
  of grant delivery, ack, holder crash and expiry probe the perturbed
  schedule produces, every lease resolves exactly once — discharged or
  reverted, never both, never neither — and no volume is lost or
  double-counted.
* **retransmit dedup** (``repro.net.reliable``): message-loss windows
  force retransmissions and timer jitter reorders the retries; the
  dedup layer must prevent any double-apply, which the sequential-spec
  oracle checks against an independent reference execution.

``derandomize=True`` keeps CI stable: hypothesis enumerates the same
examples every run, and each example is itself a deterministic
simulation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fig6 import make_paper_trace
from repro.perf.grids import derive_seed
from repro.testkit import run_case
from repro.testkit.schedule import FuzzCase

LEASE_RULES = ("lease.conflict", "lease.double-resolve", "lease.reopen")

SETTINGS = settings(max_examples=8, deadline=None, derandomize=True)


def _case(case_seed, faults, latency_amp, timer_amp, perturb_seed):
    """A small two-retailer case whose decrements force AV grants."""
    seed = derive_seed(1009, "prop.case", case_seed)
    trace = make_paper_trace(18, seed, n_items=3, n_retailers=2)
    ops = tuple(
        # Scaled-up decrements exhaust local AV, so grants (and with
        # them leases and reliable retransmissions) actually happen.
        (e.site, e.item, float(e.delta * (3 if e.delta < 0 else 1)))
        for e in trace
    )
    return FuzzCase(
        seed=seed,
        ops=ops,
        faults=faults,
        latency_amp=latency_amp,
        timer_amp=timer_amp,
        perturb_seed=derive_seed(1009, "prop.perturb", perturb_seed),
        n_items=3,
        n_retailers=2,
        interarrival=2.5,
        horizon=120.0,
        settle=160.0,
    )


@SETTINGS
@given(
    case_seed=st.integers(min_value=0, max_value=10_000),
    victim=st.sampled_from(["site1", "site2"]),
    crash_at=st.floats(min_value=10.0, max_value=60.0),
    down_for=st.floats(min_value=20.0, max_value=80.0),
    latency_amp=st.sampled_from([0.0, 0.4, 0.8]),
    perturb_seed=st.integers(min_value=0, max_value=10_000),
)
def test_lease_resolves_exactly_once_under_crashes(
    case_seed, victim, crash_at, down_for, latency_amp, perturb_seed
):
    """Ack-vs-expiry races never lose or double-count leased volume."""
    faults = (
        (round(crash_at, 3), "crash", (victim,)),
        (round(crash_at + down_for, 3), "recover", (victim,)),
    )
    outcome = run_case(
        _case(case_seed, faults, latency_amp, 0.0, perturb_seed)
    )
    assert outcome.ok, outcome.render()
    for rule in LEASE_RULES:
        assert rule not in outcome.rules
    counters = outcome.counters
    assert counters["leases_opened"] == (
        counters["leases_discharged"] + counters["leases_reverted"]
    )


@SETTINGS
@given(
    case_seed=st.integers(min_value=0, max_value=10_000),
    drop_at=st.floats(min_value=0.0, max_value=40.0),
    drop_for=st.floats(min_value=20.0, max_value=60.0),
    drop_p=st.floats(min_value=0.05, max_value=0.3),
    timer_amp=st.sampled_from([0.0, 0.3, 0.6]),
    perturb_seed=st.integers(min_value=0, max_value=10_000),
)
def test_retransmit_dedup_never_double_applies(
    case_seed, drop_at, drop_for, drop_p, timer_amp, perturb_seed
):
    """Loss-forced retries + jittered backoff: every delta applies once."""
    faults = (
        (round(drop_at, 3), "drop", (round(drop_p, 3),)),
        (round(drop_at + drop_for, 3), "drop", (0.0,)),
    )
    outcome = run_case(
        _case(case_seed, faults, 0.0, timer_amp, perturb_seed)
    )
    # outcome.ok covers the sequential-spec oracle: final replicas equal
    # the reference execution, i.e. no retransmitted delta applied twice.
    assert outcome.ok, outcome.render()
    assert "oracle.spec" not in outcome.rules


@SETTINGS
@given(
    case_seed=st.integers(min_value=0, max_value=10_000),
    perturb_seed=st.integers(min_value=0, max_value=10_000),
    latency_amp=st.sampled_from([0.2, 0.7]),
    timer_amp=st.sampled_from([0.1, 0.5]),
)
def test_perturbed_runs_stay_deterministic(
    case_seed, perturb_seed, latency_amp, timer_amp
):
    """Perturbation is part of the schedule, not a source of noise."""
    case = _case(case_seed, (), latency_amp, timer_amp, perturb_seed)
    assert run_case(case).digest() == run_case(case).digest()
