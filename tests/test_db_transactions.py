"""Unit tests for WAL, transactions, recovery, snapshots."""

import pytest

from repro.db import (
    RecoveryReport,
    Store,
    TransactionClosed,
    TransactionManager,
    TxnState,
    WalOp,
    WriteAheadLog,
    diff_stores,
    recover,
    restore_snapshot,
    stores_equal,
    take_snapshot,
)


@pytest.fixture
def store():
    s = Store("s0")
    s.insert("A", 100)
    s.insert("B", 50)
    return s


@pytest.fixture
def tm(store):
    return TransactionManager(store)


class TestTransaction:
    def test_commit_applies_deltas(self, store, tm):
        txn = tm.begin()
        txn.apply("A", -30)
        txn.apply("B", 10)
        txn.commit()
        assert store.value("A") == 70 and store.value("B") == 60
        assert txn.state is TxnState.COMMITTED
        assert tm.committed == 1

    def test_abort_compensates_in_reverse(self, store, tm):
        txn = tm.begin()
        txn.apply("A", -30)
        txn.apply("A", -20)
        txn.abort()
        assert store.value("A") == 100
        assert txn.state is TxnState.ABORTED
        assert tm.aborted == 1

    def test_closed_transaction_rejects_operations(self, tm):
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionClosed):
            txn.apply("A", 1)
        with pytest.raises(TransactionClosed):
            txn.commit()
        with pytest.raises(TransactionClosed):
            txn.abort()
        with pytest.raises(TransactionClosed):
            txn.read("A")

    def test_read_through_transaction(self, store, tm):
        txn = tm.begin()
        txn.apply("A", -1)
        assert txn.read("A") == 99

    def test_atomic_context_commits(self, store, tm):
        with tm.atomic() as txn:
            txn.apply("A", -5)
        assert store.value("A") == 95
        assert tm.committed == 1

    def test_atomic_context_aborts_on_error(self, store, tm):
        with pytest.raises(RuntimeError):
            with tm.atomic() as txn:
                txn.apply("A", -5)
                raise RuntimeError("fail inside")
        assert store.value("A") == 100
        assert tm.aborted == 1

    def test_wal_entries_ordering(self, tm):
        txn = tm.begin()
        txn.apply("A", -3)
        txn.commit()
        ops = [e.op for e in tm.wal]
        assert ops == [WalOp.BEGIN, WalOp.DELTA, WalOp.COMMIT]

    def test_abort_writes_compensation_to_wal(self, tm):
        txn = tm.begin()
        txn.apply("A", -3)
        txn.abort()
        deltas = [e.delta for e in tm.wal if e.op is WalOp.DELTA]
        assert deltas == [-3, 3]

    def test_clock_stamps_updates(self, store):
        t = [0.0]
        tm = TransactionManager(store, clock=lambda: t[0])
        txn = tm.begin()
        t[0] = 4.5
        txn.apply("A", 1)
        assert store.record("A").updated_at == 4.5


class TestWal:
    def test_in_flight_tracking(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_begin(2)
        wal.log_commit(1)
        assert wal.in_flight() == {2}

    def test_entries_for(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_delta(1, "A", 5)
        wal.log_begin(2)
        assert len(wal.entries_for(1)) == 2

    def test_truncate_keeps_in_flight(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_delta(1, "A", 5)
        wal.log_commit(1)
        wal.log_begin(2)
        wal.log_delta(2, "B", 1)
        removed = wal.truncate()
        assert removed == 3
        assert [e.txn_id for e in wal] == [2, 2]

    def test_lsn_monotonic(self):
        wal = WriteAheadLog()
        e1 = wal.log_begin(1)
        e2 = wal.log_commit(1)
        assert e2.lsn == e1.lsn + 1

    def test_str(self):
        wal = WriteAheadLog()
        e = wal.log_delta(7, "A", -2)
        assert "txn=7" in str(e) and "A-2" in str(e)


class TestRecovery:
    def test_clean_recovery_noop(self, store, tm):
        with tm.atomic() as txn:
            txn.apply("A", -10)
        report = recover(store, tm.wal)
        assert report.clean and store.value("A") == 90

    def test_recovery_compensates_in_flight(self, store, tm):
        committed = tm.begin()
        committed.apply("A", -10)
        committed.commit()
        crashed = tm.begin()  # never finishes
        crashed.apply("A", -25)
        crashed.apply("B", 5)
        report = recover(store, tm.wal)
        assert report.recovered_txns == [crashed.txn_id]
        assert report.compensations_applied == 2
        assert store.value("A") == 90 and store.value("B") == 50

    def test_recovery_idempotent(self, store, tm):
        txn = tm.begin()
        txn.apply("A", -25)
        recover(store, tm.wal)
        second = recover(store, tm.wal)
        assert second.clean
        assert store.value("A") == 100

    def test_multiple_in_flight(self, store, tm):
        t1, t2 = tm.begin(), tm.begin()
        t1.apply("A", -10)
        t2.apply("A", -20)
        t1.apply("B", 7)
        report = recover(store, tm.wal)
        assert sorted(report.recovered_txns) == [t1.txn_id, t2.txn_id]
        assert store.value("A") == 100 and store.value("B") == 50


class TestSnapshot:
    def test_take_and_restore(self, store):
        snap = take_snapshot(store, now=1.0)
        store.apply_delta("A", -40)
        restore_snapshot(store, snap, now=2.0)
        assert store.value("A") == 100

    def test_restore_item_mismatch_rejected(self, store):
        snap = take_snapshot(store)
        store.insert("C", 1)
        with pytest.raises(ValueError, match="extra"):
            restore_snapshot(store, snap)

    def test_snapshot_mapping_protocol(self, store):
        snap = take_snapshot(store)
        assert snap["A"] == 100 and "B" in snap and len(snap) == 2

    def test_diff_and_equal(self, store):
        other = Store("s1")
        other.insert("A", 100)
        other.insert("B", 50)
        assert stores_equal(store, other)
        other.apply_delta("B", 1)
        assert diff_stores(store, other) == {"B": (50, 51)}
        assert not stores_equal(store, other)

    def test_diff_missing_items(self, store):
        other = Store("s1")
        other.insert("A", 100)
        d = diff_stores(store, other)
        assert set(d) == {"B"}
