"""Property-based tests for the database substrate (DESIGN.md §7.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Store, TransactionManager, recover, take_snapshot

# Deltas that keep values in safe integer territory.
deltas = st.integers(min_value=-50, max_value=50)


def fresh_store(items=("A", "B"), initial=1000):
    store = Store("prop", allow_negative=True)
    for item in items:
        store.insert(item, initial)
    return store


@given(st.lists(st.tuples(st.sampled_from(["A", "B"]), deltas), max_size=30))
def test_abort_always_restores_state(ops):
    """Invariant 3: an aborted transaction leaves values untouched."""
    store = fresh_store()
    tm = TransactionManager(store)
    before = store.as_dict()
    txn = tm.begin()
    for item, delta in ops:
        txn.apply(item, delta, force=True)
    txn.abort()
    assert store.as_dict() == before


@given(
    st.lists(
        st.tuples(
            st.booleans(),  # commit?
            st.lists(st.tuples(st.sampled_from(["A", "B"]), deltas), max_size=8),
        ),
        max_size=10,
    )
)
def test_recovery_keeps_exactly_committed_work(txn_specs):
    """Invariant 3': crash recovery == replay of committed deltas only."""
    store = fresh_store()
    tm = TransactionManager(store)
    expected = store.as_dict()

    open_txns = []
    for commit, ops in txn_specs:
        txn = tm.begin()
        for item, delta in ops:
            txn.apply(item, delta, force=True)
        if commit:
            txn.commit()
            for item, delta in ops:
                expected[item] += delta
        else:
            open_txns.append(txn)  # simulated crash: never finished

    recover(store, tm.wal)
    assert store.as_dict() == expected
    # Second recovery is a no-op (idempotence).
    report = recover(store, tm.wal)
    assert report.clean


@given(st.lists(st.tuples(st.sampled_from(["A", "B"]), deltas), max_size=30))
def test_commit_equals_plain_application(ops):
    """Committed transactions behave exactly like direct applies."""
    store = fresh_store()
    tm = TransactionManager(store)
    mirror = store.as_dict()
    with tm.atomic() as txn:
        for item, delta in ops:
            txn.apply(item, delta, force=True)
            mirror[item] += delta
    assert store.as_dict() == mirror


@given(st.lists(st.tuples(st.sampled_from(["A", "B"]), deltas), max_size=20))
def test_snapshot_restore_round_trip(ops):
    store = fresh_store()
    snap = take_snapshot(store)
    for item, delta in ops:
        store.apply_delta(item, delta, force=True)
    from repro.db import restore_snapshot

    restore_snapshot(store, snap)
    assert store.as_dict() == snap.values
