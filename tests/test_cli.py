"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.updates == 1000 and args.seed == 0 and args.items == 10

    def test_overrides(self):
        args = build_parser().parse_args(
            ["table1", "--updates", "50", "--seed", "9", "--items", "7"]
        )
        assert (args.updates, args.seed, args.items) == (50, 9, 7)

    def test_sweep_dimension_choices(self):
        args = build_parser().parse_args(["sweep", "items"])
        assert args.dimension == "items"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bogus"])

    def test_fuzz_defaults_and_injection_choices(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.budget is None and args.cases is None
        assert args.shards == 1 and args.inject == ""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--inject", "bogus-bug"])

    def test_sweep_shards_accepts_auto_and_ints(self):
        args = build_parser().parse_args(
            ["sweep", "fig6-small", "--shards", "auto"]
        )
        assert args.shards == "auto"
        args = build_parser().parse_args(
            ["sweep", "fig6-small", "--shards", "3"]
        )
        assert args.shards == 3
        for bad in ("0", "-2", "many"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["sweep", "fig6-small", "--shards", bad]
                )

    def test_resolve_shards_sequential_for_small_grids(self):
        from repro.cli import AUTO_SHARD_MIN_TASKS, resolve_shards

        assert resolve_shards("auto", AUTO_SHARD_MIN_TASKS - 1) == 1
        assert resolve_shards("auto", AUTO_SHARD_MIN_TASKS) >= 2
        # explicit counts are always honoured verbatim
        assert resolve_shards(7, 2) == 7


class TestExecution:
    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--updates", "60", "--items", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "reduction" in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--updates", "60", "--items", "5"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_latency_runs(self, capsys):
        assert main(["latency", "--updates", "60"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out.lower() and "speedup" in out

    def test_faults_runs(self, capsys):
        assert main(["faults", "--updates", "90"]) == 0
        assert "Availability" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_fuzz_clean_campaign_exits_zero(self, capsys, tmp_path):
        code = main([
            "fuzz", "--cases", "4", "--ops", "24",
            "--artifact-dir", str(tmp_path),
        ])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_fuzz_injected_bug_shrinks_and_replays(self, capsys, tmp_path):
        code = main([
            "fuzz", "--cases", "8", "--inject", "av-double-grant",
            "--artifact-dir", str(tmp_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "shrunk" in out
        artifacts = list(tmp_path.glob("repro-*.json"))
        assert len(artifacts) == 1
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0
        assert "REPRODUCED" in capsys.readouterr().out


class TestFiguresCommand:
    def test_figures_runs(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "Fig. 4" in out and "Fig. 5" in out
        assert "av.request" in out and "imm.prepare" in out


class TestObserveCommand:
    def test_observe_defaults(self):
        args = build_parser().parse_args(["observe", "fig6"])
        assert args.experiment == "fig6"
        assert args.updates == 300 and args.sample_interval == 25.0
        assert args.trace_out is None and args.jsonl_out is None

    def test_observe_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["observe", "bogus"])

    def test_fig6_accepts_trace_out(self):
        args = build_parser().parse_args(["fig6", "--trace-out", "/tmp/x.json"])
        assert args.trace_out == "/tmp/x.json"

    def test_observe_runs_and_writes_exports(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "t.jsonl"
        code = main([
            "observe", "fig6", "--updates", "60", "--items", "5",
            "--trace-out", str(trace_path), "--jsonl-out", str(jsonl_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spans" in out and "metrics" in out
        import json

        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        assert jsonl_path.read_text().strip()

    def test_fig6_with_trace_out_runs(self, capsys, tmp_path):
        trace_path = tmp_path / "fig6.json"
        code = main([
            "fig6", "--updates", "60", "--items", "5",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        assert trace_path.exists()


class TestProfileCommand:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "fig6"])
        assert args.experiment == "fig6"
        assert args.updates is None and args.seed == 0
        assert not args.small and not args.check
        assert args.flame is None and args.trace_out is None
        assert args.out is None

    def test_profile_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "bogus"])

    def test_profile_runs_with_artifacts_and_check(self, capsys, tmp_path):
        import json

        flame = tmp_path / "flame.txt"
        trace = tmp_path / "trace.json"
        out = tmp_path / "profile.json"
        code = main([
            "profile", "fig6", "--small", "--check",
            "--flame", str(flame),
            "--trace-out", str(trace),
            "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Wall-time attribution" in printed
        assert "profile check ok" in printed
        # flamegraph collapsed stacks: "frame;frame value" per line
        lines = flame.read_text().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert any(
            e.get("cat") in ("av", "locks", "sync")
            for e in doc["traceEvents"]
        )
        report = json.loads(out.read_text())
        assert report["kind"] == "profile"
        assert report["digest_match"] is True


class TestReportCommand:
    def test_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_report_renders_profile_json(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        assert main([
            "profile", "fig6", "--small", "--out", str(out),
        ]) == 0
        capsys.readouterr()

        html = tmp_path / "dossier.html"
        assert main(["report", str(out), "--html", str(html)]) == 0
        printed = capsys.readouterr().out
        assert "Wall-time attribution" in printed
        document = html.read_text()
        assert document.startswith("<!doctype html>")
        assert "<script" not in document  # self-contained, no JS

    def test_report_rejects_non_report_json(self, capsys, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            main(["report", str(bad)])
