"""System-level property tests: conservation, convergence, determinism.

These drive the full stack (kernel + network + DB + protocols) with
hypothesis-generated workloads and check the DESIGN.md §7 invariants
after every run.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import DistributedSystem, SystemConfig, build_paper_system
from repro.workload import WorkloadEvent, run_closed

SITES = ["site0", "site1", "site2"]

events = st.lists(
    st.tuples(
        st.sampled_from(SITES),
        st.sampled_from(["item0", "item1"]),
        st.integers(min_value=-40, max_value=40),
    ),
    max_size=25,
)

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drive(system, ops):
    stream = [
        WorkloadEvent(site, item, float(delta)) for site, item, delta in ops
    ]
    return run_closed(system, stream)


@slow
@given(events)
def test_delay_invariants_hold_for_any_workload(ops):
    """Invariants 1 & 2 after an arbitrary delay-update workload."""
    system = build_paper_system(n_items=2, initial_stock=60.0, seed=0)
    drive(system, ops)
    system.check_invariants()
    # Exact conservation (integer workload): AV total + net committed
    # decrements == initial pool + committed mints.
    for item in ("item0", "item1"):
        true_value = system.collector.ledger.true_value(item)
        assert system.av_total(item) <= true_value + 1e-9
        assert true_value >= 0


@slow
@given(events)
def test_propagation_converges_for_any_workload(ops):
    """Quiescent convergence: replicas == ground truth (invariant 4')."""
    system = build_paper_system(
        n_items=2, initial_stock=60.0, seed=0, propagate=True
    )
    drive(system, ops)
    system.run()  # drain propagation traffic
    system.check_invariants(quiescent=True)


@slow
@given(events)
def test_immediate_invariants_hold_for_any_workload(ops):
    """All-immediate catalogue: replicas identical after every run."""
    system = DistributedSystem.build(
        SystemConfig(n_items=2, initial_stock=60.0, regular_fraction=0.0, seed=0)
    )
    results = drive(system, ops)
    system.check_invariants()
    values = {
        item: {s.store.value(item) for s in system.sites.values()}
        for item in ("item0", "item1")
    }
    for item, vals in values.items():
        assert len(vals) == 1, f"{item} diverged: {vals}"
        assert vals.pop() == system.collector.ledger.true_value(item)
    # Commit/abort outcomes must exactly explain the ledger.
    committed_delta = sum(
        r.request.delta for r in results if r.committed and r.request.item == "item0"
    )
    assert (
        system.collector.ledger.true_value("item0") == 60.0 + committed_delta
    )


@slow
@given(events, st.integers(min_value=0, max_value=2**16))
def test_determinism_same_seed_same_everything(ops, seed):
    """Invariant 5: bit-identical reruns (stats, values, AV, outcomes)."""

    def run_once():
        system = build_paper_system(n_items=2, initial_stock=60.0, seed=seed)
        results = drive(system, ops)
        return (
            system.stats.sent_total,
            dict(system.stats.by_site),
            [s.store.as_dict() for s in system.sites.values()],
            [s.av_table.as_dict() for s in system.sites.values()],
            [r.outcome for r in results],
            system.env.now,
        )

    assert run_once() == run_once()
