"""Behavioural tests for the Immediate Update (primary-copy) protocol."""

import pytest

from repro.cluster import build_paper_system
from repro.core import UpdateKind, UpdateOutcome


@pytest.fixture
def system():
    # 2 items, both non-regular -> every update is Immediate.
    return build_paper_system(
        n_items=2, initial_stock=50.0, regular_fraction=0.0, seed=0
    )


ITEM = "item0"


def run_one(system, site, item, delta):
    proc = system.update(site, item, delta)
    system.run()
    assert proc.ok
    return proc.value


class TestCommitPath:
    def test_routing_via_checking_function(self, system):
        accel = system.site("site1").accelerator
        assert accel.check(ITEM) is UpdateKind.IMMEDIATE

    def test_commit_updates_every_replica(self, system):
        result = run_one(system, "site1", ITEM, -7)
        assert result.committed and result.kind is UpdateKind.IMMEDIATE
        assert not result.local_only
        for site in system.sites.values():
            assert site.value(ITEM) == 43.0
        system.check_invariants()

    def test_message_cost_is_4_per_peer_pair(self, system):
        run_one(system, "site1", ITEM, -7)
        # 3 sites: 2 peers x (prepare+ready+commit+ack) = 8 messages.
        assert system.stats.sent_total == 8
        assert system.stats.correspondences_total == 4.0
        assert set(system.stats.by_tag) == {"imm"}

    def test_coordinator_at_base_works_too(self, system):
        result = run_one(system, "site0", ITEM, +10)
        assert result.committed
        for site in system.sites.values():
            assert site.value(ITEM) == 60.0

    def test_locks_released_after_commit(self, system):
        run_one(system, "site1", ITEM, -7)
        for site in system.sites.values():
            assert not site.accelerator.locks.is_locked(ITEM)


class TestAbortPath:
    def test_negative_result_aborts_globally(self, system):
        result = run_one(system, "site2", ITEM, -51)
        assert result.outcome is UpdateOutcome.ABORTED
        for site in system.sites.values():
            assert site.value(ITEM) == 50.0
            assert not site.accelerator.locks.is_locked(ITEM)

    def test_abort_then_commit_sequence(self, system):
        run_one(system, "site2", ITEM, -51)
        result = run_one(system, "site2", ITEM, -50)
        assert result.committed
        for site in system.sites.values():
            assert site.value(ITEM) == 0.0


class TestContention:
    def test_concurrent_updates_same_item_all_commit(self, system):
        """Two racing coordinators: no deadlock, serialized outcome."""
        p1 = system.update("site1", ITEM, -5)
        p2 = system.update("site2", ITEM, -5)
        system.run()
        assert p1.ok and p2.ok
        outcomes = {p1.value.outcome, p2.value.outcome}
        assert outcomes == {UpdateOutcome.COMMITTED}
        for site in system.sites.values():
            assert site.value(ITEM) == 40.0

    def test_concurrent_updates_different_items_parallel(self, system):
        p1 = system.update("site1", "item0", -5)
        p2 = system.update("site2", "item1", -5)
        system.run()
        assert p1.value.committed and p2.value.committed
        assert system.site("site0").value("item0") == 45.0
        assert system.site("site0").value("item1") == 45.0

    def test_many_racing_updates_serialize_correctly(self, system):
        procs = [system.update(f"site{(i % 2) + 1}", ITEM, -2) for i in range(10)]
        system.run()
        committed = sum(1 for p in procs if p.value.committed)
        assert committed == 10
        for site in system.sites.values():
            assert site.value(ITEM) == 30.0
        system.check_invariants()

    def test_contention_resolves_by_queuing_not_retrying(self, system):
        system.update("site1", ITEM, -5)
        system.update("site2", ITEM, -5)
        system.run()
        total_retries = sum(
            s.accelerator.immediate.retries for s in system.sites.values()
        )
        assert total_retries == 0  # canonical-order locking: waits, no aborts

    def test_interleaved_with_racing_aborts(self, system):
        """Overdraw races: exactly the affordable prefix commits."""
        # stock 50; ten racing -12s -> only 4 can commit.
        procs = [system.update(f"site{(i % 2) + 1}", ITEM, -12) for i in range(10)]
        system.run()
        committed = sum(1 for p in procs if p.value.committed)
        assert committed == 4
        for site in system.sites.values():
            assert site.value(ITEM) == 2.0
        system.check_invariants()
