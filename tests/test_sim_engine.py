"""Unit tests for the discrete-event engine (clock, queue, run modes)."""

import pytest

from repro.sim import EmptySchedule, Environment, Event


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=7.5).now == 7.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5)
    env.run()
    assert env.now == 5


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10)
    env.run(until=4)
    assert env.now == 4


def test_run_until_time_processes_events_at_boundary():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(4)
        seen.append(env.now)

    env.process(proc(env))
    env.run(until=4)
    assert seen == [4]


def test_run_until_before_now_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 3


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(11)
    env.run()
    assert env.run(until=ev) == 11


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1)
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=ev)


def test_step_on_empty_queue_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(2.5)
    assert env.peek() == 2.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)
    with pytest.raises(ValueError):
        env.schedule(Event(env), delay=-0.5)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay):
        yield env.timeout(delay)
        order.append(delay)

    for d in [5, 1, 3, 2, 4]:
        env.process(waiter(env, d))
    env.run()
    assert order == [1, 2, 3, 4, 5]


def test_fifo_among_simultaneous_events():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abcde":
        env.process(waiter(env, tag))
    env.run()
    assert order == list("abcde")


def test_unhandled_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    env.run()  # no raise


def test_events_processed_counter():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.events_processed == 2
