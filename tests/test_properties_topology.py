"""Randomized topology properties (scale-out satellite).

Two properties over hypothesis-drawn topologies (2–15 sites, 1–3
levels) and Zipf-skewed workloads:

* **Interest-set routing** — no item-bearing message is ever sent to
  (or received by) a site outside that item's interest set. Checked by
  a network observer on every ``send``/``recv``; partial replication
  is only sound if this holds for *every* interleaving, so it is a
  property, not an example.
* **Multi-level AV conservation** — with the protocol sanitizer
  attached, the run ends with zero violations: Σ(leaf tables +
  aggregator pools + holds + in-transit grants) never exceeds the
  ledger headroom at any point, at any level of the supply tree. The
  explicit end-state check additionally pins Σ AV ≤ headroom exactly
  (no volume minted by pool refills).

``derandomize=True`` keeps CI stable (same examples every run; each
example is a deterministic simulation).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DistributedSystem, Topology, paper_config
from repro.sim.rng import RngRegistry
from repro.workload.generators import TopologyWorkload

SETTINGS = settings(max_examples=10, deadline=None, derandomize=True)

#: message kinds whose payload names a single catalogue item
ITEM_BEARING = (
    "av.request",
    "av.pool.request",
    "av.pool.refill",
    "av.push",
    "prop.delta",
    "read.owed",
    "cls.lock",
    "cls.to_regular",
    "cls.to_nonregular",
)


@st.composite
def topologies(draw):
    """A topology spec with 2–15 sites and 1–3 supply-tree levels."""
    n_items = draw(st.integers(4, 12))
    # Match the catalogue's zero-padded naming (paper_config builds the
    # item universe; the topology's must be the identical list).
    items = [f"item{i:0{len(str(n_items - 1))}d}" for i in range(n_items)]
    kind = draw(st.sampled_from(["flat", "regional", "deep"]))
    if kind == "flat":
        spec = f"flat:{draw(st.integers(1, 6))}"
    elif kind == "regional":
        regions = draw(st.integers(1, 3))
        leaves = draw(st.integers(1, 2))
        spread = draw(st.integers(1, 2))
        spec = f"regional:{regions}x{leaves}:s{spread}"
    else:
        regions = draw(st.integers(1, 2))
        subs = draw(st.integers(1, 2))
        leaves = draw(st.integers(1, 2))
        spread = draw(st.integers(1, 2))
        spec = f"deep:{regions}x{subs}x{leaves}:s{spread}"
    return Topology.parse(spec, items), spec


def _drive(topology, seed: int, n_updates: int):
    """Build, attach the routing observer, replay a Zipf stream."""
    cfg = paper_config(
        n_items=len(topology.items),
        seed=seed,
        topology=topology,
        sanitize=True,
        propagate=True,
        request_timeout=8.0,
    )
    system = DistributedSystem.build(cfg)

    breaches = []

    def check_interest(event, now, msg):
        item = (
            msg.payload.get("item")
            if isinstance(msg.payload, dict) and msg.kind in ITEM_BEARING
            else None
        )
        if item is None:
            return
        for endpoint_name in (msg.src, msg.dst):
            if item not in topology.interest_of(endpoint_name):
                breaches.append(
                    f"{event} {msg.kind} {msg.src}->{msg.dst}: {item!r}"
                    f" outside {endpoint_name!r} interest set"
                )

    system.network.observers.append(check_interest)

    rngs = RngRegistry(seed + 1)
    workload = TopologyWorkload(
        topology,
        initial_stock=100.0,
        rng=rngs.stream("workload.prop"),
        skew=1.3,
    )
    for event in workload.events(n_updates):
        system.update(event.site, event.item, event.delta)
        system.run()
    for name in system.config.site_names:
        system.sites[name].accelerator.sync_all()
    system.run()
    return system, breaches


class TestInterestSetRouting:
    @SETTINGS
    @given(topo_spec=topologies(), seed=st.integers(0, 2**20))
    def test_no_item_escapes_its_interest_set(self, topo_spec, seed):
        topology, spec = topo_spec
        system, breaches = _drive(topology, seed, n_updates=25)
        assert breaches == [], f"{spec}: " + "; ".join(breaches[:5])


class TestMultiLevelConservation:
    @SETTINGS
    @given(topo_spec=topologies(), seed=st.integers(0, 2**20))
    def test_sanitizer_clean_and_av_bounded(self, topo_spec, seed):
        topology, spec = topo_spec
        system, _ = _drive(topology, seed, n_updates=25)
        report = system.sanitizer.finish()
        assert not report.violations, (
            f"{spec}: " + "; ".join(str(v) for v in report.violations[:3])
        )
        # End-state conservation across every level of the tree: summed
        # AV (leaves + aggregator pools + the maker) never exceeds the
        # ledger headroom — pool refills move volume, never mint it.
        ledger = system.collector.ledger
        eps = 1e-6
        for item in ledger.items():
            assert system.av_total(item) <= ledger.true_value(item) + eps, (
                f"{spec}: AV for {item!r} exceeds ground truth"
            )
        system.check_invariants()
