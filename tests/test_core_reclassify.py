"""Tests for dynamic item reclassification (regular <-> non-regular)."""

import pytest

from repro.cluster import build_paper_system
from repro.core import UpdateKind
from repro.core.reclassify import TAG_RECLASS, ReclassificationError


def run_proc(system, proc):
    system.run()
    assert proc.ok, proc.value
    return proc.value


@pytest.fixture
def system():
    # item0 regular (AV 30/30/30), item1 non-regular.
    return build_paper_system(
        n_items=2, initial_stock=90.0, regular_fraction=0.5, seed=0
    )


class TestMakeRegular:
    def test_defines_av_everywhere(self, system):
        accel = system.maker.accelerator
        shares = run_proc(system, accel.make_regular("item1"))
        assert sum(shares.values()) == 90.0
        for site in system.sites.values():
            assert site.av_table.defined("item1")
            assert site.av_table.get("item1") == shares[site.name]
        assert accel.check("item1") is UpdateKind.DELAY
        system.check_invariants()

    def test_av_fraction_and_weights(self, system):
        accel = system.maker.accelerator
        shares = run_proc(
            system,
            accel.make_regular(
                "item1", av_fraction=0.5,
                weights={"site0": 2, "site1": 1, "site2": 1},
            ),
        )
        assert sum(shares.values()) == 45.0
        assert shares["site0"] > shares["site1"]

    def test_already_regular_rejected(self, system):
        accel = system.maker.accelerator
        with pytest.raises(ReclassificationError):
            accel.make_regular("item0")

    def test_message_cost(self, system):
        accel = system.maker.accelerator
        run_proc(system, accel.make_regular("item1"))
        # 2 peers x (lock+reply + commit+ack) = 8 messages, tag cls.
        assert system.stats.by_tag[TAG_RECLASS] == 8

    def test_updates_flow_after_conversion(self, system):
        accel = system.maker.accelerator
        run_proc(system, accel.make_regular("item1"))
        result = run_proc(system, system.update("site1", "item1", -10))
        assert result.committed and result.kind is UpdateKind.DELAY
        assert result.local_only


class TestMakeNonRegular:
    def test_reconciles_diverged_replicas(self, system):
        # Create divergence: local delay updates with lazy propagation.
        run_proc(system, system.update("site1", "item0", -25))
        run_proc(system, system.update("site0", "item0", +10))
        assert system.site("site2").value("item0") == 90.0  # stale

        accel = system.site("site2").accelerator  # any site may coordinate
        true_value = run_proc(system, accel.make_non_regular("item0"))
        assert true_value == 75.0
        for site in system.sites.values():
            assert site.value("item0") == 75.0
            assert not site.av_table.defined("item0")
        system.check_invariants()

    def test_already_non_regular_rejected(self, system):
        accel = system.maker.accelerator
        with pytest.raises(ReclassificationError):
            accel.make_non_regular("item1")

    def test_updates_become_immediate(self, system):
        accel = system.maker.accelerator
        run_proc(system, accel.make_non_regular("item0"))
        result = run_proc(system, system.update("site1", "item0", -5))
        assert result.kind is UpdateKind.IMMEDIATE and result.committed
        for site in system.sites.values():
            assert site.value("item0") == 85.0

    def test_unsynced_claimed_not_double_sent(self, system):
        run_proc(system, system.update("site1", "item0", -25))
        accel1 = system.site("site1").accelerator
        assert accel1.owed_to("site0", "item0") == -25.0
        assert accel1.owed_to("site2", "item0") == -25.0
        run_proc(system, system.maker.accelerator.make_non_regular("item0"))
        assert "item0" not in accel1.unsynced_items()
        # a later sync_all must not resend the claimed delta
        assert accel1.sync_all() == 0

    def test_concurrent_delay_update_waits_at_gate(self, system):
        """An update racing the reclassification lands consistently.

        It either completes as a Delay update before the freeze, or
        waits at the gate and re-routes to the Immediate path.
        """
        p_upd = system.update("site1", "item0", -10)
        p_cls = system.maker.accelerator.make_non_regular("item0")
        system.run()
        assert p_upd.ok and p_cls.ok
        assert p_upd.value.committed
        # Whatever the interleaving, the final state is consistent.
        values = {s.value("item0") for s in system.sites.values()}
        assert values == {80.0}
        system.check_invariants()

    def test_round_trip_regular_nonregular_regular(self, system):
        accel = system.maker.accelerator
        run_proc(system, system.update("site1", "item0", -30))
        run_proc(system, accel.make_non_regular("item0"))
        shares = run_proc(system, accel.make_regular("item0"))
        assert sum(shares.values()) == 60.0
        result = run_proc(system, system.update("site2", "item0", -5))
        assert result.kind is UpdateKind.DELAY and result.committed
        system.check_invariants()


class TestSyncBatching:
    def test_sync_item_batches_deltas(self, system):
        for _ in range(3):
            run_proc(system, system.update("site1", "item0", -5))
        accel = system.site("site1").accelerator
        assert accel.owed_to("site0", "item0") == -15.0
        sent = accel.sync_item("item0")
        assert sent == 2  # one per peer, regardless of 3 updates
        system.run()
        assert system.site("site0").value("item0") == 75.0
        assert system.site("site2").value("item0") == 75.0

    def test_sync_all_and_idempotence(self, system):
        run_proc(system, system.update("site1", "item0", -5))
        accel = system.site("site1").accelerator
        assert accel.sync_all() == 2
        assert accel.sync_all() == 0  # drained

    def test_all_sites_synced_converge_to_ledger(self, system):
        run_proc(system, system.update("site1", "item0", -5))
        run_proc(system, system.update("site2", "item0", -7))
        run_proc(system, system.update("site0", "item0", +3))
        for site in system.sites.values():
            site.accelerator.sync_all()
        system.run()
        expected = system.collector.ledger.true_value("item0")
        for site in system.sites.values():
            assert site.value("item0") == expected

    def test_eager_mode_keeps_unsynced_empty(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, propagate=True
        )
        proc = system.update("site1", "item0", -5)
        system.run()
        assert proc.value.committed
        assert not system.site("site1").accelerator.owed
