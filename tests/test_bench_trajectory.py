"""Tests for the benchmark-history trajectory analytics.

The harness lives outside the installed package (``benchmarks/``), so
these tests import it by path. They exercise the pure analytics layer —
history lines, the rolling-window verdict, and the regression gate —
with synthetic reports, never by timing real sweeps.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_HARNESS_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "harness.py"
)
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_harness", harness)
_spec.loader.exec_module(harness)


def _report(throughput=1.0, grid="fig6-small", wall=0.5):
    """Minimal grid report with the fields the analytics consume."""
    return {
        "experiment": "fig6",
        "grid": grid,
        "root_seed": 0,
        "tasks": 6,
        "events_processed": 12345,
        "calibration_kops": 20000.0,
        "sequential": {"normalized_throughput": throughput, "wall_s": wall},
        "digest": "d" * 16,
        "digest_match": True,
    }


def _entries(*throughputs, grid="fig6-small"):
    return [
        harness.history_entry(_report(t, grid=grid), ts=1000.0 + i)
        for i, t in enumerate(throughputs)
    ]


def _sharded_report(speedup, throughput=1.0, grid="fig6-small"):
    report = _report(throughput, grid=grid)
    report["sharded"] = {
        "shards": 4,
        "wall_s": 0.5 / speedup if speedup else 0.5,
        "events_per_sec": 1000.0 * speedup,
        "speedup": speedup,
        "retries": 0,
    }
    return report


def _sharded_entries(*speedups, grid="fig6-small"):
    return [
        harness.history_entry(
            _sharded_report(s, grid=grid), ts=2000.0 + i
        )
        for i, s in enumerate(speedups)
    ]


class TestHistoryFile:
    def test_entry_fields(self):
        entry = harness.history_entry(_report(1.25), ts=1234.5678)
        assert entry["schema"] == harness.HISTORY_SCHEMA
        assert entry["ts"] == 1234.568
        assert entry["grid"] == "fig6-small"
        assert entry["normalized_throughput"] == 1.25
        assert entry["digest_match"] is True

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        first = harness.append_history(_report(1.0), path=path, ts=1.0)
        second = harness.append_history(_report(1.1), path=path, ts=2.0)
        assert harness.load_history(path) == [first, second]

    def test_load_filters_by_grid(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        harness.append_history(_report(1.0, grid="fig6-small"), path=path)
        harness.append_history(_report(2.0, grid="chaos-small"), path=path)
        entries = harness.load_history(path, grid="chaos-small")
        assert [e["normalized_throughput"] for e in entries] == [2.0]

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        entry = harness.append_history(_report(1.0), path=path, ts=1.0)
        with path.open("a") as fh:
            fh.write("not json at all\n\n{\"half\": \n")
        assert harness.load_history(path) == [entry]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert harness.load_history(tmp_path / "absent.jsonl") == []

    def test_lines_are_canonical_json(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        harness.append_history(_report(1.0), path=path, ts=1.0)
        line = path.read_text().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)


class TestTrajectoryVerdict:
    def test_synthetic_ten_percent_regression_flagged(self):
        # A healthy run history at ~1.0, then the current run drops
        # below every recent run by more than the tolerance.
        history = _entries(1.0, 1.02, 0.99, 1.01, 1.0)
        verdict = harness.trajectory_verdict(_report(0.88), history)
        assert verdict["verdict"] == "regression"
        assert verdict["floor"] == 0.99
        assert verdict["floor_ratio"] < 0.9
        assert verdict["window"] == 5

    def test_noise_above_floor_tolerance_is_stable(self):
        history = _entries(1.0, 1.2, 0.95, 1.1, 1.05)
        verdict = harness.trajectory_verdict(_report(0.9), history)
        # 0.9 / floor(0.95) ≈ 0.947 — inside the 10% band.
        assert verdict["verdict"] == "stable"

    def test_improvement_requires_beating_all_trends(self):
        history = _entries(1.0, 1.0, 1.0)
        baseline = _report(1.0)
        verdict = harness.trajectory_verdict(
            _report(1.2), history, baseline=baseline
        )
        assert verdict["verdict"] == "improvement"
        # ...but not if the committed baseline is already higher.
        verdict = harness.trajectory_verdict(
            _report(1.2), history, baseline=_report(1.15)
        )
        assert verdict["verdict"] == "stable"

    def test_baseline_gates_only_without_history(self):
        baseline = _report(1.0)
        verdict = harness.trajectory_verdict(_report(0.8), [], baseline)
        assert verdict["verdict"] == "regression"
        # With history, a healthy trajectory outvotes a stale baseline.
        history = _entries(0.8, 0.82, 0.81)
        verdict = harness.trajectory_verdict(_report(0.8), history, baseline)
        assert verdict["verdict"] == "stable"
        assert verdict["baseline_ratio"] == 0.8  # still reported

    def test_no_data(self):
        verdict = harness.trajectory_verdict(_report(1.0), [])
        assert verdict["verdict"] == "no-data"
        assert verdict["baseline"] is None
        assert verdict["floor"] is None

    def test_window_limits_lookback(self):
        # An ancient slow run outside the window must not lower the floor.
        history = _entries(0.5, 1.0, 1.0, 1.0, 1.0, 1.0)
        verdict = harness.trajectory_verdict(
            _report(0.88), history, window=5
        )
        assert verdict["floor"] == 1.0
        assert verdict["verdict"] == "regression"

    def test_other_grids_ignored(self):
        history = _entries(5.0, 5.0, grid="chaos-small")
        verdict = harness.trajectory_verdict(_report(1.0), history)
        assert verdict["verdict"] == "no-data"

    def test_zero_throughput_entries_skipped(self):
        history = _entries(0.0, 1.0)
        verdict = harness.trajectory_verdict(_report(1.0), history)
        assert verdict["window"] == 1
        assert verdict["floor"] == 1.0

    def test_render_mentions_verdict_and_references(self):
        history = _entries(1.0, 1.0)
        verdict = harness.trajectory_verdict(
            _report(1.0), history, baseline=_report(1.0)
        )
        text = harness.render_verdict(verdict)
        assert "trajectory verdict [fig6-small]: stable" in text
        assert "vs baseline" in text
        assert "vs floor" in text

    def test_median_helper(self):
        assert harness._median([3.0, 1.0, 2.0]) == 2.0
        assert harness._median([4.0, 1.0, 2.0, 3.0]) == 2.5


class TestShardedSpeedupFloor:
    """The runner's never-slower-than-sequential promise, gated."""

    def test_history_entry_records_speedup(self):
        entry = harness.history_entry(_sharded_report(1.3), ts=1.0)
        assert entry["sharded_speedup"] == 1.3
        # Throughput-only reports record None (and the analytics skip it).
        assert harness.history_entry(_report(1.0), ts=1.0)[
            "sharded_speedup"
        ] is None

    def test_parity_speedup_is_stable(self):
        history = _entries(1.0, 1.0, 1.0)
        verdict = harness.trajectory_verdict(_sharded_report(1.05), history)
        assert verdict["verdict"] == "stable"
        assert verdict["sharded_speedup"] == 1.05
        assert verdict["speedup_floor"] == 1.0
        assert verdict["speedup_ratio"] == 1.05

    def test_below_parity_beyond_tolerance_is_regression(self):
        # Healthy throughput cannot excuse sharding running 20% slower
        # than sequential — the pool contract itself regressed.
        history = _entries(1.0, 1.0, 1.0)
        verdict = harness.trajectory_verdict(_sharded_report(0.8), history)
        assert verdict["verdict"] == "regression"
        assert verdict["speedup_ratio"] == 0.8

    def test_below_parity_within_tolerance_is_noise(self):
        history = _entries(1.0, 1.0, 1.0)
        verdict = harness.trajectory_verdict(_sharded_report(0.95), history)
        assert verdict["verdict"] == "stable"

    def test_floor_rises_with_recorded_history(self):
        # A multi-core host whose history shows x3 speedups regresses at
        # x2 — long before it sinks below parity.
        history = _entries(1.0, 1.0) + _sharded_entries(3.0, 3.1, 2.9)
        verdict = harness.trajectory_verdict(_sharded_report(2.0), history)
        assert verdict["speedup_floor"] == 2.9
        assert verdict["verdict"] == "regression"
        verdict = harness.trajectory_verdict(_sharded_report(2.95), history)
        assert verdict["verdict"] == "stable"

    def test_schema1_history_lines_are_skipped(self):
        # Old history lines have no sharded_speedup key at all.
        legacy = _entries(1.0, 1.0)
        for entry in legacy:
            entry.pop("sharded_speedup")
        verdict = harness.trajectory_verdict(_sharded_report(1.2), legacy)
        assert verdict["speedup_floor"] == 1.0
        assert verdict["verdict"] == "stable"

    def test_throughput_only_report_skips_the_gate(self):
        history = _sharded_entries(3.0, 3.0)
        verdict = harness.trajectory_verdict(_report(1.0), history)
        assert verdict["sharded_speedup"] is None
        assert verdict["speedup_ratio"] is None
        assert verdict["verdict"] == "stable"

    def test_speedup_alone_cannot_rescue_no_data(self):
        # No throughput reference at all: the loud no-data verdict must
        # survive even when the sharded gate has a healthy number.
        verdict = harness.trajectory_verdict(_sharded_report(1.5), [])
        assert verdict["verdict"] == "no-data"

    def test_render_mentions_speedup(self):
        verdict = harness.trajectory_verdict(
            _sharded_report(1.25), _entries(1.0, 1.0)
        )
        assert "sharded speedup 1.25" in harness.render_verdict(verdict)

    def test_committed_baselines_beat_parity(self):
        # ISSUE 10 acceptance: every recommitted BENCH_*.json records a
        # sharded speedup above 1.0.
        for grid in sorted(harness.BENCH_GRIDS):
            path = harness.RESULTS_DIR / f"BENCH_{grid}.json"
            baseline = json.loads(path.read_text())
            assert baseline["sharded"]["speedup"] > 1.0, grid


class TestCalibration:
    def test_calibrate_positive(self):
        assert harness.calibrate(samples=1) > 0


class TestCheckBaselineGate:
    """main() under --check-baseline, with bench_grid/calibrate stubbed
    so no real sweep is ever timed."""

    def _patch(self, monkeypatch, tmp_path, history):
        def fake_bench(label, grid, seed, shards, cal, repeats=3):
            report = _report(1.0, grid=grid)
            report["sequential"]["events_per_sec"] = 1000.0
            report["sharded"] = {
                "shards": shards, "wall_s": 0.5,
                "events_per_sec": 1000.0, "speedup": 1.0, "retries": 0,
            }
            return report

        monkeypatch.setattr(harness, "calibrate", lambda samples=5: 1.0)
        monkeypatch.setattr(harness, "bench_grid", fake_bench)
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setattr(
            harness, "load_history", lambda path=None, grid=None: history
        )
        monkeypatch.setattr(
            harness, "append_history",
            lambda report, path=None, ts=None: {},
        )

    def test_no_data_verdict_fails_loudly(self, monkeypatch, tmp_path, capsys):
        # No committed baseline, no history: the gate must fail, not
        # silently pass with nothing to compare against.
        self._patch(monkeypatch, tmp_path, history=[])
        rc = harness.main(
            ["--small", "--check-baseline", "--experiments", "fig6"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "no-data" in err
        assert "cannot run" in err

    def test_healthy_history_passes(self, monkeypatch, tmp_path, capsys):
        self._patch(
            monkeypatch, tmp_path,
            history=_entries(1.0, 1.0, 1.0),
        )
        (tmp_path / "BENCH_fig6.json").write_text(
            json.dumps(_report(1.0, grid="fig6-small"))
        )
        rc = harness.main(
            ["--small", "--check-baseline", "--experiments", "fig6"]
        )
        assert rc == 0, capsys.readouterr().err


@pytest.mark.parametrize("grid", sorted(harness.BENCH_GRIDS))
def test_committed_baselines_parse(grid):
    """The checked-in BENCH_*.json files feed the gate; keep them sane."""
    path = harness.RESULTS_DIR / f"BENCH_{grid}.json"
    baseline = json.loads(path.read_text())
    assert baseline["sequential"]["normalized_throughput"] > 0
    assert baseline["digest_match"] is True


def test_committed_history_parses():
    entries = harness.load_history()
    assert entries, "benchmarks/results/HISTORY.jsonl should not be empty"
    for entry in entries:
        # Schema 1 lines predate the sharded_speedup field; both parse.
        assert entry["schema"] in (1, harness.HISTORY_SCHEMA)
        assert entry["grid"] in {g + "-small" for g in ("fig6", "table1", "chaos")} | {
            "fig6", "table1", "chaos"
        }
