"""Unit tests for generator processes: composition, interrupts, failures."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_composition_yield_subprocess():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "from-child"

    def parent(env):
        got = yield env.process(child(env))
        return (env.now, got)

    p = env.process(parent(env))
    env.run()
    assert p.value == (2, "from-child")


def test_yield_from_delegation():
    env = Environment()

    def inner(env):
        yield env.timeout(1)
        return 5

    def outer(env):
        a = yield from inner(env)
        b = yield from inner(env)
        return a + b

    p = env.process(outer(env))
    env.run()
    assert p.value == 10 and env.now == 2


def test_process_failure_propagates_to_joiner():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("exploded")

    def joiner(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(joiner(env))
    env.run(until=p)
    assert p.value == "caught exploded"


def test_unjoined_process_failure_crashes_simulation():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt(cause="crash")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == ("interrupted", "crash", 3)


def test_interrupt_detaches_old_target():
    env = Environment()
    resumed = []

    def victim(env):
        try:
            yield env.timeout(5)
            resumed.append("timeout")  # must NOT happen
        except Interrupt:
            yield env.timeout(100)
            resumed.append("post-interrupt")

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert resumed == ["post-interrupt"]
    assert env.now == 101


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def bad(env):
        try:
            yield 42
        except TypeError as exc:
            return f"typeerror: {'not an Event' in str(exc)}"
        yield env.timeout(0)

    p = env.process(bad(env))
    env.run()
    assert p.value == "typeerror: True"


def test_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_process(env):
        yield env.timeout(0)

    p = env.process(my_process(env))
    assert p.name == "my_process"
    q = env.process(my_process(env), name="custom")
    assert q.name == "custom"
    env.run()


def test_active_process_visible_during_execution():
    env = Environment()
    observed = []

    def proc(env):
        observed.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc(env))
    env.run()
    assert observed == [p]
    assert env.active_process is None


def test_immediate_return_process():
    env = Environment()

    def empty(env):
        return 7
        yield  # pragma: no cover - makes it a generator

    p = env.process(empty(env))
    env.run()
    assert p.value == 7
