"""Unit tests for the lock manager, including simulated waiting."""

import pytest

from repro.db import LockError, LockManager, LockMode, LockUpgradeError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def lm(env):
    return LockManager(env)


def test_free_lock_granted_immediately(lm):
    ev = lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert ev.triggered
    assert lm.holders("A") == {"p1": LockMode.EXCLUSIVE}


def test_shared_locks_coexist(lm):
    assert lm.acquire("A", "p1", LockMode.SHARED).triggered
    assert lm.acquire("A", "p2", LockMode.SHARED).triggered
    assert set(lm.holders("A")) == {"p1", "p2"}


def test_exclusive_blocks_everyone(lm):
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert not lm.acquire("A", "p2", LockMode.SHARED).triggered
    assert not lm.acquire("A", "p3", LockMode.EXCLUSIVE).triggered
    assert lm.waiting("A") == 2


def test_release_grants_next_fifo(env, lm):
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    e2 = lm.acquire("A", "p2", LockMode.EXCLUSIVE)
    e3 = lm.acquire("A", "p3", LockMode.EXCLUSIVE)
    lm.release("A", "p1")
    assert e2.triggered and not e3.triggered
    lm.release("A", "p2")
    assert e3.triggered


def test_grant_wave_admits_shared_batch(lm):
    lm.acquire("A", "w", LockMode.EXCLUSIVE)
    s1 = lm.acquire("A", "r1", LockMode.SHARED)
    s2 = lm.acquire("A", "r2", LockMode.SHARED)
    x = lm.acquire("A", "w2", LockMode.EXCLUSIVE)
    lm.release("A", "w")
    assert s1.triggered and s2.triggered and not x.triggered
    lm.release("A", "r1")
    assert not x.triggered
    lm.release("A", "r2")
    assert x.triggered


def test_no_barging_past_queued_exclusive(lm):
    """A shared request behind a queued X waits (fairness/no starvation)."""
    lm.acquire("A", "r1", LockMode.SHARED)
    x = lm.acquire("A", "w", LockMode.EXCLUSIVE)
    s2 = lm.acquire("A", "r2", LockMode.SHARED)
    assert not x.triggered and not s2.triggered
    lm.release("A", "r1")
    assert x.triggered and not s2.triggered
    lm.release("A", "w")
    assert s2.triggered


def test_reentrant_acquire(lm):
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    again = lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert again.triggered


def test_upgrade_sole_holder(lm):
    lm.acquire("A", "p1", LockMode.SHARED)
    up = lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert up.triggered
    assert lm.holders("A") == {"p1": LockMode.EXCLUSIVE}


def test_upgrade_with_other_holders_rejected(lm):
    lm.acquire("A", "p1", LockMode.SHARED)
    lm.acquire("A", "p2", LockMode.SHARED)
    with pytest.raises(LockUpgradeError):
        lm.acquire("A", "p1", LockMode.EXCLUSIVE)


def test_release_without_hold_raises(lm):
    with pytest.raises(LockError):
        lm.release("A", "nobody")


def test_locks_independent_per_item(lm):
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert lm.acquire("B", "p2", LockMode.EXCLUSIVE).triggered


def test_is_locked_and_cleanup(lm):
    assert not lm.is_locked("A")
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    assert lm.is_locked("A")
    lm.release("A", "p1")
    assert not lm.is_locked("A")
    assert lm._locks == {}  # fully cleaned up


def test_process_integration(env, lm):
    """Two processes serialize on an exclusive lock."""
    order = []

    def worker(env, name, hold):
        yield lm.acquire("A", name, LockMode.EXCLUSIVE)
        order.append((name, "in", env.now))
        yield env.timeout(hold)
        lm.release("A", name)
        order.append((name, "out", env.now))

    env.process(worker(env, "w1", 5))
    env.process(worker(env, "w2", 3))
    env.run()
    assert order == [
        ("w1", "in", 0),
        ("w1", "out", 5),
        ("w2", "in", 5),
        ("w2", "out", 8),
    ]


def test_exclusive_downgrade_request_is_noop(lm):
    lm.acquire("A", "p1", LockMode.EXCLUSIVE)
    ev = lm.acquire("A", "p1", LockMode.SHARED)
    assert ev.triggered
    assert lm.holders("A") == {"p1": LockMode.EXCLUSIVE}
