"""Differential tests for the same-timestamp FIFO fast path.

The optimized :class:`~repro.sim.engine.Environment` routes zero-delay
events through per-priority FIFO buckets instead of the heap. These
tests pin down its headline claim — the fast path is **bit-identical**
to the pure-heap engine — by driving both through identical randomly
generated schedules (seeded ``random.Random``; the workloads here model
adversarial schedules, not simulation randomness) and comparing the
complete pop order, tie-breaking included.

Also here: regression tests for the seq-uniqueness invariant (queue
keys must never compare equal, because tuple comparison would then fall
through to the :class:`Event` objects, which define no ordering).
"""

import itertools
import random
from heapq import heappush

import pytest

from repro.sim.engine import Environment
from repro.sim.errors import EmptySchedule
from repro.sim.events import Event, LATE, NORMAL, URGENT

PRIORITIES = (URGENT, NORMAL, LATE)

# Heavily weighted toward 0.0 (the fast path) with a few positive
# delays from a small lattice so heap events frequently land exactly on
# a bucket timestamp — the tie the full-key comparison must get right.
DELAY_CHOICES = (0.0, 0.0, 0.0, 0.0, 0.25, 0.5, 1.0, 1.0)


class HeapqEnvironment(Environment):
    """Reference engine: the seed's pure-heap ``schedule``.

    Inherits everything else — ``step`` never touches the buckets when
    they are empty, so with every event heap-routed this is exactly the
    pre-optimization engine, while sharing the seq-allocation behaviour
    of the subject engine.
    """

    def schedule(self, event, priority=NORMAL, delay=0.0):
        seq = self._eseq
        self._eseq = seq + 1
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heappush(self._queue, (self._now + delay, priority, seq, event))


def run_random_schedule(env_cls, seed, n_roots=24, max_depth=4):
    """Drive ``env_cls`` through a seeded random cascade workload.

    Returns the full execution trace ``[(event_id, time), ...]``. Each
    executed event may schedule further events (mostly zero-delay, the
    dominant pattern in the real system); delays are drawn from a small
    lattice so distinct scheduling sites collide on the same timestamp.
    """
    env = env_cls()
    rng = random.Random(seed)
    ids = itertools.count()
    trace = []

    def spawn(depth):
        eid = next(ids)

        def fire(event, eid=eid, depth=depth):
            trace.append((eid, env.now))
            if depth < max_depth:
                for _ in range(rng.randrange(0, 4)):
                    child, prio, delay = spawn(depth + 1)
                    env.schedule(child, priority=prio, delay=delay)

        event = Event(env)
        event.callbacks.append(fire)
        return event, rng.choice(PRIORITIES), rng.choice(DELAY_CHOICES)

    for _ in range(n_roots):
        root, prio, delay = spawn(0)
        env.schedule(root, priority=prio, delay=delay)
    env.run()
    return trace


@pytest.mark.parametrize("seed", range(25))
def test_fastpath_identical_to_heapq_reference(seed):
    """Property: identical pop order (ids *and* timestamps) per seed."""
    fast = run_random_schedule(Environment, seed)
    reference = run_random_schedule(HeapqEnvironment, seed)
    assert fast == reference
    assert len(fast) > 0


@pytest.mark.parametrize("seed", range(5))
def test_fastpath_peek_matches_reference(seed):
    """``peek`` agrees with the reference at every step of a run."""

    def peeks(env_cls):
        env = env_cls()
        rng = random.Random(seed)
        for _ in range(100):
            env.schedule(
                Event(env),
                priority=rng.choice(PRIORITIES),
                delay=rng.choice(DELAY_CHOICES),
            )
        seen = []
        while True:
            seen.append(env.peek())
            try:
                env.step()
            except EmptySchedule:
                break
        return seen

    assert peeks(Environment) == peeks(HeapqEnvironment)


def test_zero_delay_fifo_order_within_priority():
    """Zero-delay events of equal priority pop in schedule order."""
    env = Environment()
    trace = []
    for i in range(50):
        ev = Event(env)
        ev.callbacks.append(lambda _e, i=i: trace.append(i))
        env.schedule(ev, priority=NORMAL, delay=0.0)
    env.run()
    assert trace == list(range(50))


def test_priorities_interleave_like_heap_at_same_timestamp():
    """URGENT < NORMAL < LATE at one timestamp, FIFO within each."""
    env = Environment()
    trace = []
    plan = [(NORMAL, "n0"), (LATE, "l0"), (URGENT, "u0"),
            (NORMAL, "n1"), (URGENT, "u1"), (LATE, "l1")]
    for prio, tag in plan:
        ev = Event(env)
        ev.callbacks.append(lambda _e, tag=tag: trace.append(tag))
        env.schedule(ev, priority=prio, delay=0.0)
    env.run()
    assert trace == ["u0", "u1", "n0", "n1", "l0", "l1"]


def test_heap_event_beats_bucket_event_on_equal_time_and_priority():
    """A heap entry landing exactly on the bucket timestamp, with equal
    priority, must win iff its seq is lower — the exact tie the fast
    path's full-key comparison exists for."""
    env = Environment()
    trace = []

    def tagged(tag):
        ev = Event(env)
        ev.callbacks.append(lambda _e: trace.append(tag))
        return ev

    # Scheduled first => lower seq; lands on the heap at t=1.0.
    env.schedule(tagged("heap"), priority=NORMAL, delay=1.0)

    def at_t1(_event):
        # Now at t=1.0: this zero-delay event enters the bucket with a
        # *higher* seq than the pending heap entry at the same key
        # prefix (1.0, NORMAL) — heap entry must pop first.
        env.schedule(tagged("bucket"), priority=NORMAL, delay=0.0)

    starter = Event(env)
    starter.callbacks.append(at_t1)
    env.schedule(starter, priority=URGENT, delay=1.0)

    env.run()
    assert trace == ["heap", "bucket"]


# --------------------------------------------------------------------- #
# seq uniqueness (the latent tie-break bug)
# --------------------------------------------------------------------- #


class UncomparableEvent(Event):
    """Event whose comparison explodes — proves keys never tie."""

    __slots__ = ()

    def __lt__(self, other):  # pragma: no cover - must never run
        raise AssertionError(
            "queue keys compared equal and fell through to the Event"
        )

    __gt__ = __le__ = __ge__ = __lt__


@pytest.mark.parametrize("delay", [0.0, 1.0])
def test_colliding_time_and_priority_never_compare_events(delay):
    """Many events with identical (time, priority) sort purely by seq."""
    env = Environment()
    trace = []
    for i in range(200):
        ev = UncomparableEvent(env)
        ev.callbacks.append(lambda _e, i=i: trace.append(i))
        env.schedule(ev, priority=NORMAL, delay=delay)
    env.run()
    assert trace == list(range(200))


def test_seq_strictly_increasing_and_unique():
    """Every schedule consumes a fresh seq; draining never resets it."""
    env = Environment()
    for _ in range(10):
        env.schedule(Event(env), delay=1.0)
    keys = {entry[2] for entry in env._queue}
    assert len(keys) == 10
    env.run()
    before = env._eseq
    env.schedule(Event(env), delay=0.0)
    assert env._eseq == before + 1
    env.run()
    assert env._eseq == before + 1  # running consumes none


def test_seq_is_per_engine():
    """Two engines allocate independently; each stays strictly unique."""
    a, b = Environment(), Environment()
    for _ in range(5):  # interleave on purpose
        a.schedule(Event(a), delay=2.0)
        b.schedule(Event(b), delay=2.0)
    assert [e[2] for e in sorted(a._queue)] == list(range(5))
    assert [e[2] for e in sorted(b._queue)] == list(range(5))
