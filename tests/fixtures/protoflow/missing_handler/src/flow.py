"""Planted defect: "zz.ping" is declared and sent, but nothing ever
registers a handler for it — delivery would raise LookupError."""


def ping(endpoint, peer, item):
    endpoint.send(peer, "zz.ping", {"item": item})
