"""Planted defect: two code paths acquire the same two locks in
opposite orders — the classic static deadlock shape."""


def forward(locks, token):
    yield locks.acquire("alpha", token)
    yield locks.acquire("beta", token)
    locks.release("beta", token)
    locks.release("alpha", token)


def backward(locks, token):
    yield locks.acquire("beta", token)
    yield locks.acquire("alpha", token)
    locks.release("alpha", token)
    locks.release("beta", token)
