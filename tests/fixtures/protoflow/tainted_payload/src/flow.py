"""Planted defect: a host-clock reading flows into a message payload,
making message contents schedule-dependent."""

import time


def observe(endpoint, peer):
    payload = {"t": time.time()}  # repro-lint: disable=wall-clock (fixture: planted protoflow taint, not simulation code)
    endpoint.send(peer, "zz.obs", payload)


def handle_obs(msg):
    msg.payload["t"]


def register(endpoint):
    endpoint.on("zz.obs", handle_obs)
