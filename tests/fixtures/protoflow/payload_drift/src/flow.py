"""Planted defect: the send site writes a key the registry does not
declare, and the handler reads a key nobody sends."""


def put(endpoint, peer, item):
    endpoint.send(peer, "zz.put", {"item": item, "extra": 1})


def handle_put(msg):
    store(msg.payload["item"], msg.payload["other"])


def store(item, other):
    del item, other


def register(endpoint):
    endpoint.on("zz.put", handle_put)
