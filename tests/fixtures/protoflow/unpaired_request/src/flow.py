"""Planted defect: "zz.ask" is a fault-aware request kind, but the
handler never returns a reply value and the only send site passes no
timeout (and nothing in this tree builds a *.reply message)."""


def ask(endpoint, peer, item):
    yield endpoint.request(peer, "zz.ask", {"item": item})


def handle_ask(msg):
    msg.payload["item"]


def register(endpoint):
    endpoint.on("zz.ask", handle_ask)
