"""Planted defect: sends a message kind the registry never declared."""


def announce(endpoint, peer, item):
    endpoint.send(peer, "zz.mystery", {"item": item})
