"""Direct unit tests for FaultInjector and Channel (no network needed)."""

import numpy as np
import pytest

from repro.net import Channel, ChannelTable, FaultInjector


class TestFaultInjector:
    def test_crash_recover_idempotent(self):
        f = FaultInjector()
        f.crash("a")
        f.crash("a")
        assert f.crashes_injected == 1
        assert f.is_crashed("a")
        assert f.crashed_sites == frozenset({"a"})
        f.recover("a")
        f.recover("a")
        assert not f.is_crashed("a")

    def test_should_drop_for_crashed_endpoints(self):
        f = FaultInjector()
        f.crash("b")
        assert f.should_drop("a", "b")
        assert f.should_drop("b", "a")
        assert not f.should_drop("a", "c")
        assert f.messages_dropped == 2

    def test_partition_semantics(self):
        f = FaultInjector()
        f.partition([["a", "b"], ["c"]])
        assert f.partitioned
        assert f.same_partition("a", "b")
        assert not f.same_partition("a", "c")
        # unlisted sites share the implicit group
        assert f.same_partition("x", "y")
        assert not f.same_partition("a", "x")
        f.heal()
        assert not f.partitioned
        assert f.same_partition("a", "c")

    def test_partition_duplicate_site_rejected(self):
        f = FaultInjector()
        with pytest.raises(ValueError):
            f.partition([["a"], ["a", "b"]])

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=1.5)

    def test_drop_probability_requires_rng(self):
        f = FaultInjector(drop_probability=0.5)  # no rng
        with pytest.raises(RuntimeError):
            f.should_drop("a", "b")

    def test_drop_probability_statistics(self):
        f = FaultInjector(rng=np.random.default_rng(0), drop_probability=0.3)
        drops = sum(f.should_drop("a", "b") for _ in range(1000))
        assert 230 < drops < 370

    def test_repr(self):
        f = FaultInjector()
        f.crash("z")
        assert "z" in repr(f)


class TestChannel:
    def test_delivery_time_plain(self):
        c = Channel("a", "b")
        assert c.delivery_time(now=10.0, latency=2.0) == 12.0
        assert c.delivered == 1

    def test_fifo_clamps_reordering(self):
        c = Channel("a", "b", fifo=True)
        first = c.delivery_time(now=0.0, latency=10.0)
        second = c.delivery_time(now=1.0, latency=2.0)  # would arrive at 3
        assert first == 10.0 and second == 10.0

    def test_non_fifo_allows_reordering(self):
        c = Channel("a", "b", fifo=False)
        c.delivery_time(now=0.0, latency=10.0)
        assert c.delivery_time(now=1.0, latency=2.0) == 3.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Channel("a", "b").delivery_time(0.0, -1.0)

    def test_table_lazily_creates_directed_channels(self):
        table = ChannelTable()
        ab = table.get("a", "b")
        ba = table.get("b", "a")
        assert ab is not ba
        assert table.get("a", "b") is ab
        assert len(table) == 2
        assert set(c.src for c in table) == {"a", "b"}
