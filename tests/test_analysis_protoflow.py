"""Tests for the whole-program protocol-flow analyzer
(repro.analysis.protoflow) and the declarative message registry
(repro.net.protocol).

The six known-bad fixture packages under ``tests/fixtures/protoflow/``
each plant exactly one defect class; every one must be flagged by its
rule, and the shipped ``src/`` tree must analyze clean.
"""

import json
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.protoflow import run_checks
from repro.analysis.protoflow.ir import index_project
from repro.analysis.protoflow.report import (
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.net.protocol import (
    PROTOCOL,
    MessageSpec,
    make_registry,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "protoflow"


def spec(kind, pairing="oneway", **kw):
    return MessageSpec(
        kind=kind, direction=("a", "b"), tag="zz", pairing=pairing, **kw
    )


def analyze_tree(path, registry):
    _, ir = index_project([str(path)])
    return run_checks(ir, registry)


def analyze_snippet(tmp_path, source, registry):
    target = tmp_path / "src" / "flow.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return analyze_tree(tmp_path, registry)


def rules_hit(findings):
    return sorted({f.rule for f in findings})


class TestRegistry:
    def test_protocol_is_nonempty_and_self_consistent(self):
        assert len(PROTOCOL) >= 20
        for kind in PROTOCOL.kinds():
            s = PROTOCOL.spec(kind)
            assert s.kind == kind
            if s.is_request:
                assert s.reply_kind == f"{kind}.reply"
                assert PROTOCOL.request_kind_of(s.reply_kind) == kind

    def test_reply_kinds_derived_not_declared(self):
        assert "av.request.reply" in PROTOCOL.reply_kinds()
        assert "av.request.reply" not in PROTOCOL
        with pytest.raises(ValueError, match="derived"):
            spec("zz.ask.reply")

    def test_malformed_kind_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            spec("ZZ.Shout")

    def test_oneway_cannot_declare_reply_schema(self):
        with pytest.raises(ValueError):
            spec("zz.push", reply_required=frozenset({"ok"}))

    def test_infra_keys_cannot_be_declared(self):
        with pytest.raises(ValueError, match="infra"):
            spec("zz.push", required=frozenset({"_obs"}))

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_registry([spec("zz.push"), spec("zz.push")])


class TestFixtures:
    """Each planted defect class is caught by its rule."""

    def test_unregistered_kind(self):
        findings = analyze_tree(
            FIXTURES / "unregistered_kind", make_registry([])
        )
        assert rules_hit(findings) == ["proto-unregistered-kind"]
        assert any("zz.mystery" in f.message for f in findings)

    def test_missing_handler(self):
        registry = make_registry([
            spec("zz.ping", required=frozenset({"item"})),
        ])
        findings = analyze_tree(FIXTURES / "missing_handler", registry)
        assert rules_hit(findings) == ["proto-missing-handler"]
        assert "LookupError" in findings[0].message

    def test_payload_drift(self):
        registry = make_registry([
            spec("zz.put", required=frozenset({"item"})),
        ])
        findings = analyze_tree(FIXTURES / "payload_drift", registry)
        assert rules_hit(findings) == ["proto-payload-drift"]
        messages = "\n".join(f.message for f in findings)
        assert "'extra'" in messages      # undeclared send key
        assert "'other'" in messages      # undeclared handler read

    def test_unpaired_request(self):
        registry = make_registry([
            spec("zz.ask", pairing="request",
                 required=frozenset({"item"}),
                 reply_required=frozenset({"ok"}),
                 needs_timeout=True),
        ])
        findings = analyze_tree(FIXTURES / "unpaired_request", registry)
        assert rules_hit(findings) == ["proto-unpaired-request"]
        messages = "\n".join(f.message for f in findings)
        assert "never returns a value" in messages
        assert "needs_timeout" in messages

    def test_lock_cycle(self):
        findings = analyze_tree(FIXTURES / "lock_cycle", make_registry([]))
        assert rules_hit(findings) == ["proto-lock-cycle"]
        assert "alpha" in findings[0].symbol
        assert "beta" in findings[0].symbol

    def test_tainted_payload(self):
        registry = make_registry([
            spec("zz.obs", required=frozenset({"t"})),
        ])
        findings = analyze_tree(FIXTURES / "tainted_payload", registry)
        assert rules_hit(findings) == ["proto-taint"]
        assert "'t'" in findings[0].message


class TestResolution:
    """Symbolic and interprocedural kind resolution."""

    def test_constant_kind_resolves(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            def go(endpoint, peer):
                endpoint.send(peer, "zz.push", {"item": 1})

            def register(endpoint):
                endpoint.on("zz.push", lambda m: None)
            """, make_registry([spec("zz.push", required=frozenset({"item"}))]))
        assert findings == []

    def test_kind_through_parameter_resolves(self, tmp_path):
        # the _deliver_decision shape: a variable kind fed only constants
        findings = analyze_snippet(tmp_path, """\
            def deliver(endpoint, peer, kind):
                endpoint.send(peer, kind, {"item": 1})

            def commit(endpoint, peer):
                deliver(endpoint, peer, "zz.secret")
            """, make_registry([]))
        assert "proto-unregistered-kind" in rules_hit(findings)
        assert any(f.symbol == "zz.secret" for f in findings)

    def test_fstring_reply_suffix_is_machinery(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            def reply(endpoint, to, payload):
                endpoint.send(to.src, f"{to.kind}.reply", payload)
            """, make_registry([]))
        assert findings == []

    def test_unresolvable_kind_flagged(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            def go(endpoint, peer, table):
                endpoint.send(peer, table["k"], {})
            """, make_registry([]))
        assert rules_hit(findings) == ["proto-unregistered-kind"]
        assert "not statically resolvable" in findings[0].message

    def test_unsent_declared_kind_flagged(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            x = 1
            """, make_registry([spec("zz.ghost")]))
        assert "proto-unsent-kind" in rules_hit(findings)


class TestSuppressionAndBaseline:
    def test_inline_suppression_silences_rule(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            def go(endpoint, peer):
                endpoint.send(peer, "zz.mystery", {})  # repro-lint: disable=proto-unregistered-kind (fixture)
            """, make_registry([]))
        assert findings == []

    def test_baseline_round_trip(self, tmp_path):
        findings = analyze_snippet(tmp_path, """\
            def go(endpoint, peer):
                endpoint.send(peer, "zz.mystery", {})
            """, make_registry([]))
        assert findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file)
        baseline = load_baseline(baseline_file)
        assert apply_baseline(findings, baseline) == []

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        first = analyze_snippet(tmp_path, """\
            def go(endpoint, peer):
                endpoint.send(peer, "zz.mystery", {})
            """, make_registry([]))
        baseline_file = tmp_path / "baseline.json"
        write_baseline(first, baseline_file)
        shifted = analyze_snippet(tmp_path, """\


            def go(endpoint, peer):
                endpoint.send(peer, "zz.mystery", {})
            """, make_registry([]))
        assert shifted[0].line != first[0].line
        assert apply_baseline(shifted, load_baseline(baseline_file)) == []

    def test_unknown_baseline_version_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(bad)


class TestReporters:
    def _one_finding(self, tmp_path):
        return analyze_snippet(tmp_path, """\
            def go(endpoint, peer):
                endpoint.send(peer, "zz.mystery", {})
            """, make_registry([]))

    def test_text_reporter(self, tmp_path):
        findings = self._one_finding(tmp_path)
        out = render_text(findings)
        assert "proto-unregistered-kind" in out
        assert ":2:" in out

    def test_json_reporter(self, tmp_path):
        findings = self._one_finding(tmp_path)
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        entry = payload["findings"][0]
        assert entry["rule"] == "proto-unregistered-kind"
        assert entry["symbol"] == "zz.mystery"


class TestRepoGate:
    """The acceptance gates CI enforces."""

    def test_repo_tree_is_protocol_clean_and_fast(self):
        started = time.perf_counter()
        findings = analyze_tree(REPO_ROOT / "src", PROTOCOL)
        elapsed = time.perf_counter() - started
        assert findings == [], "\n".join(f.render() for f in findings)
        assert elapsed < 5.0, f"full-repo analysis took {elapsed:.2f}s"

    def test_cli_clean_on_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.protoflow", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_flags_fixture_and_exits_nonzero(self):
        # the repo registry knows nothing about zz.* kinds
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.protoflow",
             str(FIXTURES / "unregistered_kind"), "--json"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert any(
            e["rule"] == "proto-unregistered-kind"
            for e in payload["findings"]
        )

    def test_repro_check_static_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", "--static"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout


class TestDriftRegressions:
    """The real drift the analyzer surfaced while baselining must stay
    fixed (see the registry entries for imm.prepare/imm.commit/
    imm.abort and prop.flush)."""

    def _facts(self, name):
        _, ir = index_project(
            [str(REPO_ROOT / "src" / "repro" / "core" / "immediate_update.py")]
        )
        for (path, fname), facts in ir.funcs.items():
            if fname == name:
                return facts
        raise AssertionError(f"no facts for {name}")

    def test_prepare_reply_has_no_dead_reason_key(self):
        facts = self._facts("handle_prepare")
        for keys in facts.return_dict_keys:
            assert "reason" not in keys

    def test_decision_reply_has_no_dead_site_key(self):
        facts = self._facts("_apply_decision")
        for keys in facts.return_dict_keys:
            assert keys == frozenset({"done"})

    def test_rejoin_consumes_flush_reply(self):
        _, ir = index_project(
            [str(REPO_ROOT / "src" / "repro" / "cluster" / "rejoin.py")]
        )
        flush_sites = [
            s for s in ir.sends
            if s.kind.const == "prop.flush" and s.api == "request"
        ]
        assert flush_sites
        assert any("pushed" in s.reply_reads for s in flush_sites)
