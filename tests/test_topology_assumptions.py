"""Regressions for latent flat-layout assumptions (scale-out satellite).

The seed code was written for a 3-site, everyone-replicates-everything
cluster, and several call sites silently baked that in: owed-balance
fan-out over ``endpoint.peers()``, 2PC over every live endpoint,
reconciled reads asking the whole cluster, the rebalancer pushing to
anyone, and rejoin folding the base's *entire* catalogue into the
recovering site. Each test here drives the corresponding path on a
partial-replication topology and asserts no item ever crosses an
interest boundary — these fail loudly if any call site regresses to
whole-cluster iteration.
"""

from __future__ import annotations

import pytest

from repro.cluster import DistributedSystem, Topology, paper_config

N_ITEMS = 8


def _items():
    return [f"item{i}" for i in range(N_ITEMS)]


def _build(**overrides):
    topology = Topology.regional(_items(), 2, 2, spread=2)
    defaults = dict(
        n_items=N_ITEMS,
        seed=5,
        topology=topology,
        request_timeout=8.0,
        trace=True,
    )
    defaults.update(overrides)
    config = paper_config(**defaults)
    return DistributedSystem.build(config), topology


def _observe_items(system):
    """Record every delivered item-bearing message as (kind, dst, item)."""
    seen = []

    def observer(event, now, msg):
        if event == "recv" and isinstance(msg.payload, dict):
            item = msg.payload.get("item")
            if item is not None:
                seen.append((msg.kind, msg.dst, item))

    system.network.observers.append(observer)
    return seen


class TestOwedBalanceFanOut:
    def test_record_unsynced_targets_only_interest_peers(self):
        system, topology = _build()
        leaf = "site1"
        item = topology.interest_of(leaf)[0]
        accel = system.sites[leaf].accelerator
        proc = system.update(leaf, item, -3.0)
        system.run()
        assert proc.value.committed
        owed_peers = {peer for (peer, it), _ in accel.owed.items() if it == item}
        interest = set(topology.sites_for(item)) - {leaf}
        assert owed_peers == interest

    def test_sync_all_never_crosses_interest_boundaries(self):
        system, topology = _build(propagate=False)
        seen = _observe_items(system)
        for leaf in [n for n in topology.names if topology.role_of(n) == "retailer"]:
            for item in topology.interest_of(leaf)[:2]:
                system.update(leaf, item, -2.0)
        system.run()
        for name in system.config.site_names:
            system.sites[name].accelerator.sync_all()
        system.run()
        for kind, dst, item in seen:
            assert item in topology.interest_of(dst), (
                f"{kind} delivered {item!r} to {dst!r} outside its slice"
            )


class TestImmediateUpdateParticipants:
    def test_2pc_spans_exactly_the_interest_set(self):
        system, topology = _build(regular_fraction=0.0)
        seen = _observe_items(system)
        leaf = "site1"
        item = topology.interest_of(leaf)[0]
        proc = system.update(leaf, item, -4.0)
        system.run()
        assert proc.value.committed
        touched = {dst for kind, dst, it in seen if it == item}
        assert touched <= set(topology.sites_for(item))
        # The commit reached every replica, not a proper subset.
        for site in system.interested_sites(item):
            assert site.store.value(item) == pytest.approx(96.0)


class TestReconciledReads:
    def test_read_asks_only_the_items_replicas(self):
        from repro.core.reads import ReadConsistency

        system, topology = _build(propagate=False)
        leaf = "site1"
        item = topology.interest_of(leaf)[0]
        proc = system.sites[leaf].accelerator.read(
            item, ReadConsistency.RECONCILED
        )
        system.run()
        result = proc.value
        assert result.peers_asked == len(topology.sites_for(item)) - 1


class TestRebalancerScope:
    def test_pushes_stay_inside_interest_sets(self):
        from repro.core.rebalancer import AVRebalancer

        system, topology = _build()
        seen = _observe_items(system)
        maker = topology.maker
        accel = system.sites[maker].accelerator
        # Make one leaf believed-poor so the maker's surplus moves.
        item = topology.interest_of("site1")[0]
        for peer in topology.sites_for(item):
            if peer != maker:
                accel.beliefs.observe(peer, item, 0.0, system.env.now)
        AVRebalancer(accel).rebalance_once()
        system.run()
        pushes = [(dst, it) for kind, dst, it in seen if kind == "av.push"]
        assert pushes, "rebalancer moved nothing despite a believed-poor peer"
        for dst, it in pushes:
            assert it in topology.interest_of(dst)


class TestReclassificationScope:
    def test_class_change_round_trips_inside_interest_set(self):
        system, topology = _build()
        seen = _observe_items(system)
        maker = topology.maker
        accel = system.sites[maker].accelerator
        item = topology.interest_of("site1")[0]
        proc = accel.make_non_regular(item)
        system.run()
        assert proc.value == pytest.approx(100.0)
        for site in system.interested_sites(item):
            assert not site.av_table.defined(item)
        proc = accel.make_regular(item)
        system.run()
        for site in system.interested_sites(item):
            assert site.av_table.defined(item)
        for kind, dst, it in seen:
            assert it in topology.interest_of(dst)
        system.check_invariants()


class TestRejoinCatalogReconcile:
    def test_recovered_leaf_folds_in_only_its_slice(self):
        from repro.net.reliable import ReliabilityParams

        system, topology = _build(
            reliability=ReliabilityParams(), propagate=False
        )
        leaf = "site1"
        interest = set(topology.interest_of(leaf))
        faults = system.network.faults
        system.run(until=5.0)
        faults.crash(leaf)
        system.run(until=20.0)
        faults.recover(leaf)
        system.sites[leaf].restart()
        system.run()
        accel = system.sites[leaf].accelerator
        defined = {item for item, _volume in accel.av_table.items()}
        assert defined == interest, (
            "rejoin folded the base's whole catalogue into the leaf"
        )
        believed = {item for _peer, item, _belief in accel.beliefs.entries()}
        assert believed <= interest
