"""Tests for the subsystem profiler and profiled experiment runs.

The contract: profiling is purely observational. A profiled run's
simulation fingerprint is byte-identical to an unprofiled one, the
attribution covers (nearly) all of the run loop's wall time across at
least the major subsystems, and every deterministic part of the report
(event counts, span rollups, flame stacks) is identical run to run.
"""

import json

import pytest

from repro.experiments import run_fig6
from repro.experiments.profile import ProfiledRun, run_profiled
from repro.obs.profile import (
    MODULE_SUBSYSTEMS,
    SPAN_SUBSYSTEMS,
    SUBSYSTEMS,
    Profiler,
    collapsed_stacks,
    profiled_chrome_trace,
    span_rollups,
    subsystem_for_path,
    write_collapsed_stacks,
    write_profiled_chrome_trace,
)
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Environment


class TestSubsystemClassification:
    def test_known_module_paths(self):
        assert subsystem_for_path("/x/src/repro/net/channel.py") == "net"
        assert subsystem_for_path("/x/src/repro/core/delay_update.py") == "av"
        assert subsystem_for_path("/x/src/repro/core/sync.py") == "sync"
        assert (
            subsystem_for_path("/x/src/repro/core/immediate_update.py")
            == "locks"
        )
        assert subsystem_for_path("/x/src/repro/db/locks.py") == "locks"
        assert subsystem_for_path("/x/src/repro/sim/engine.py") == "engine"
        assert (
            subsystem_for_path("/x/src/repro/baselines/centralized.py")
            == "baseline"
        )

    def test_unknown_paths_fall_back_to_other(self):
        assert subsystem_for_path("/somewhere/else.py") == "other"
        assert subsystem_for_path("/x/src/repro/new_pkg/mod.py") == "other"

    def test_every_mapped_subsystem_is_declared(self):
        assert {s for _, s in MODULE_SUBSYSTEMS} <= set(SUBSYSTEMS)
        assert set(SPAN_SUBSYSTEMS.values()) <= set(SUBSYSTEMS)


class TestProfilerHook:
    def test_nested_activation_rejected(self):
        with Profiler():
            with pytest.raises(RuntimeError):
                Profiler().__enter__()

    def test_hook_removed_after_exit(self):
        with Profiler():
            assert Environment.profile_dispatch is not None
        assert Environment.profile_dispatch is None

    def test_hook_removed_even_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with Profiler():
                raise RuntimeError("boom")
        assert Environment.profile_dispatch is None

    def test_attribution_covers_run_wall(self):
        # Coverage is a wall-time ratio: an OS preemption between two
        # kernel events deflates it on a noisy host, so take the best
        # of a few attempts (same remedy as best-of-N bench timing).
        best = None
        for _ in range(3):
            profiler = Profiler()
            with profiler:
                run_fig6(n_updates=200, seed=0)
            assert profiler.events_attributed > 0
            if best is None or profiler.coverage > best:
                best = profiler.coverage
            if best >= 0.95:
                break
        assert best >= 0.95
        # the run loop's own overhead keeps coverage strictly below 1
        assert best <= 1.0

    def test_event_counts_deterministic(self):
        counts = []
        for _ in range(2):
            profiler = Profiler()
            with profiler:
                run_fig6(n_updates=120, seed=3)
            counts.append(profiler.event_counts())
        assert counts[0] == counts[1]
        assert sum(counts[0].values()) > 0


class TestProfiledRun:
    @pytest.fixture(scope="class")
    def fig6_profiled(self):
        # best_of makes the coverage assertion noise-robust: see
        # run_profiled's docstring
        return run_profiled(
            "fig6", small=True, verify_digest=True, best_of=3
        )

    def test_digest_identical_to_unprofiled(self, fig6_profiled):
        assert fig6_profiled.report["digest_match"] is True

    def test_at_least_four_subsystems_attributed(self, fig6_profiled):
        attributed = [
            name
            for name, row in fig6_profiled.report["subsystems"].items()
            if row["events"] > 0
        ]
        assert len(attributed) >= 4

    def test_coverage_gate(self, fig6_profiled):
        assert fig6_profiled.report["wall"]["coverage"] >= 0.95

    def test_hotspots_sorted_by_self_time(self, fig6_profiled):
        hotspots = fig6_profiled.report["hotspots"]
        assert hotspots, "no span hotspots collected"
        selfs = [h["self_sim"] for h in hotspots]
        assert selfs == sorted(selfs, reverse=True)
        assert all(h["name"] in SPAN_SUBSYSTEMS for h in hotspots)

    def test_sites_summarised(self, fig6_profiled):
        sites = fig6_profiled.report["sites"]
        assert set(sites) == {"site0", "site1", "site2"}
        for row in sites.values():
            assert "av_level" in row and "sync_backlog" in row

    def test_report_is_json_ready(self, fig6_profiled):
        encoded = json.dumps(fig6_profiled.report, sort_keys=True)
        assert json.loads(encoded)["experiment"] == "fig6"

    def test_deterministic_across_runs(self, fig6_profiled):
        again = run_profiled("fig6", small=True)
        assert again.digest == fig6_profiled.digest
        assert again.flame == fig6_profiled.flame
        assert (
            again.report["span_rollups"]
            == fig6_profiled.report["span_rollups"]
        )
        first_events = {
            name: row["events"]
            for name, row in fig6_profiled.report["subsystems"].items()
        }
        again_events = {
            name: row["events"]
            for name, row in again.report["subsystems"].items()
        }
        assert first_events == again_events

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_profiled("bogus")

    def test_table1_includes_correspondences(self):
        run = run_profiled("table1", n_updates=60)
        for row in run.report["sites"].values():
            assert "correspondences" in row

    def test_chaos_profiled_run(self):
        run = run_profiled("chaos", small=True, n_updates=40)
        assert run.report["experiment"] == "chaos"
        assert len(run.span_groups) == 4  # one recorder per small scenario
        assert run.report["events_processed"] > 0
        assert isinstance(run, ProfiledRun)


class TestSpanRollups:
    def _recorder(self):
        rec = SpanRecorder()
        root = rec.start("update", "site1", 0.0)
        child = rec.start("av.request", "site1", 1.0, parent=root)
        child.finish(4.0)
        root.finish(10.0)
        lone = rec.start("sync.pass", "site0", 2.0)
        lone.finish(2.5)
        return rec

    def test_self_time_excludes_children(self):
        rollup = span_rollups(self._recorder())
        assert rollup["update"]["cum_sim"] == 10.0
        assert rollup["update"]["self_sim"] == 7.0  # 10 - 3 (child)
        assert rollup["av.request"]["self_sim"] == 3.0
        assert rollup["sync.pass"]["subsystem"] == "sync"

    def test_collapsed_stacks_nest_and_scale(self):
        lines = collapsed_stacks(self._recorder())
        assert "site1;update 7000" in lines
        assert "site1;update;av.request 3000" in lines
        assert "site0;sync.pass 500" in lines
        assert lines == sorted(lines)

    def test_zero_self_time_spans_skipped(self):
        rec = SpanRecorder()
        span = rec.start("update", "s", 1.0)
        span.finish(1.0)
        assert collapsed_stacks(rec) == []

    def test_write_collapsed_stacks(self, tmp_path):
        path = tmp_path / "flame.txt"
        count = write_collapsed_stacks(str(path), self._recorder())
        assert count == 3
        assert len(path.read_text().splitlines()) == 3

    def test_chrome_trace_enriched_with_subsystem(self, tmp_path):
        events = profiled_chrome_trace(self._recorder())
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete
        assert all("subsystem" in e["args"] for e in complete)
        by_name = {e["name"]: e["cat"] for e in complete}
        assert by_name["update"] == "av"
        assert by_name["sync.pass"] == "sync"
        path = tmp_path / "trace.json"
        document = write_profiled_chrome_trace(str(path), self._recorder())
        assert json.loads(path.read_text()) == document
