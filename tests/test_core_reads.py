"""Tests for the read API (consistency levels) and site restart recovery."""

import pytest

from repro.cluster import build_paper_system
from repro.core.reads import ReadConsistency, TAG_READ


def run_proc(system, proc):
    system.run()
    assert proc.ok, getattr(proc, "value", None)
    return proc.value


@pytest.fixture
def system():
    return build_paper_system(n_items=2, initial_stock=90.0, seed=0)


ITEM = "item0"


class TestLocalRead:
    def test_local_read_is_free(self, system):
        result = run_proc(system, system.site("site1").accelerator.read(ITEM))
        assert result.value == 90.0
        assert result.consistency is ReadConsistency.LOCAL
        assert system.stats.sent_total == 0

    def test_local_read_sees_own_updates_but_not_peers(self, system):
        run_proc(system, system.update("site2", ITEM, -10))
        local = run_proc(system, system.site("site1").accelerator.read(ITEM))
        assert local.value == 90.0  # stale: site2's delta not propagated


class TestReconciledRead:
    def test_reconciled_read_recovers_ground_truth(self, system):
        run_proc(system, system.update("site2", ITEM, -10))
        run_proc(system, system.update("site0", ITEM, +7))
        result = run_proc(
            system,
            system.site("site1").accelerator.read(
                ITEM, ReadConsistency.RECONCILED
            ),
        )
        assert result.value == 87.0
        assert result.value == system.collector.ledger.true_value(ITEM)
        assert result.peers_asked == 2
        assert system.stats.by_tag[TAG_READ] == 4  # 2 requests + 2 replies

    def test_read_does_not_mutate_balances(self, system):
        run_proc(system, system.update("site2", ITEM, -10))
        accel2 = system.site("site2").accelerator
        before = accel2.owed_to("site1", ITEM)
        run_proc(
            system,
            system.site("site1").accelerator.read(
                ITEM, ReadConsistency.RECONCILED
            ),
        )
        assert accel2.owed_to("site1", ITEM) == before
        # A later sync still delivers the delta.
        accel2.sync_all()
        system.run()
        assert system.site("site1").value(ITEM) == 80.0

    def test_non_regular_item_always_local(self, system):
        sys2 = build_paper_system(
            n_items=1, initial_stock=50.0, regular_fraction=0.0, seed=0
        )
        result = run_proc(
            sys2,
            sys2.site("site1").accelerator.read(
                "item0", ReadConsistency.RECONCILED
            ),
        )
        assert result.value == 50.0
        assert result.peers_asked == 0
        assert sys2.stats.sent_total == 0


class TestLockedRead:
    def test_locked_read_releases_lock(self, system):
        accel = system.site("site1").accelerator
        result = run_proc(system, accel.read(ITEM, ReadConsistency.LOCKED))
        assert result.value == 90.0
        assert not accel.locks.is_locked(ITEM)

    def test_locked_read_value_correct(self, system):
        run_proc(system, system.update("site2", ITEM, -15))
        result = run_proc(
            system,
            system.site("site1").accelerator.read(ITEM, ReadConsistency.LOCKED),
        )
        assert result.value == 75.0


class TestSiteRestart:
    def test_restart_after_clean_crash(self, system):
        run_proc(system, system.update("site1", ITEM, -10))
        system.network.faults.crash("site1")
        report = system.site("site1").restart()
        system.run()
        assert report.clean
        assert not system.site("site1").crashed
        # The pre-crash delta reached the peers via the restart sync.
        assert system.site("site0").value(ITEM) == 80.0
        assert system.site("site2").value(ITEM) == 80.0
        system.check_invariants()

    def test_restart_resolves_in_doubt_2pc_via_coordinator(self):
        """The 2PC termination protocol: a participant that crashed
        holding a provisional apply learns the commit decision from the
        coordinator on restart, and the coordinator's bounded resends
        eventually reach it — the whole system converges."""
        system = build_paper_system(
            n_items=1,
            initial_stock=50.0,
            regular_fraction=0.0,
            seed=0,
            request_timeout=5.0,
        )
        victim = system.site("site2")
        # Coordinator at site1 starts an immediate update, but site2
        # crashes right after preparing (before the commit arrives).
        proc = system.update("site1", "item0", -5)

        def crasher(env):
            # canonical order site0,site1,site2: site2 prepares last, at
            # ~4 time units in; crash just after its provisional apply.
            yield env.timeout(4.5)
            system.network.faults.crash("site2")
            yield env.timeout(20.0)
            victim.restart()

        system.env.process(crasher(system.env))
        system.run()
        # In-doubt txn resolved as COMMIT; every replica agrees.
        assert proc.triggered and proc.value.committed
        for site in system.sites.values():
            assert site.value("item0") == 45.0
        assert not victim.accelerator.immediate._pending
        assert not victim.accelerator.locks.is_locked("item0")
        system.check_invariants()

    def test_restart_presumes_abort_without_decision(self):
        """A prepared participant whose coordinator never decided (it
        crashed first) aborts on resolution — both sides compensate."""
        system = build_paper_system(
            n_items=1,
            initial_stock=50.0,
            regular_fraction=0.0,
            seed=0,
            request_timeout=5.0,
        )
        coordinator = system.site("site1")
        victim = system.site("site2")
        proc = system.update("site1", "item0", -5)

        def crasher(env):
            # site2 prepares (provisionally applies) at t=3; its ready
            # vote reaches the coordinator at t=4, where the decision
            # would be logged. Kill both at 3.5: prepared participant,
            # undecided coordinator.
            yield env.timeout(3.5)
            system.network.faults.crash("site1")
            system.network.faults.crash("site2")
            yield env.timeout(20.0)
            coordinator.restart()
            victim.restart()

        system.env.process(crasher(system.env))
        system.run()
        # No decision was logged -> presumed abort everywhere.
        for site in system.sites.values():
            assert site.value("item0") == 50.0
        assert not victim.accelerator.immediate._pending
        system.check_invariants()
