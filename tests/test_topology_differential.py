"""Topology differential: the declarative paper layout IS the seed path.

The scale-out refactor threads a :class:`~repro.cluster.topology.Topology`
through config, bootstrap, and every interest-aware call site. These
tests pin the refactor's central guarantee: expressing the paper's
1-maker/2-retailer cluster as a ``Topology`` produces **byte-identical**
experiment fingerprints to the original (topology-free) code path —
same update tags, same replica values, same correspondence counters,
repr-exact floats included. Any divergence (an extra message, a
reordered peer list, a perturbed RNG draw) flips the digest.
"""

from __future__ import annotations

import pytest

from repro.cluster import DistributedSystem, Topology, paper_config
from repro.perf.tasks import _update_tags, digest


def _items(n: int) -> list:
    return [f"item{i:0{len(str(n - 1))}d}" for i in range(n)]


def _fig6_fingerprint(topology) -> str:
    from repro.experiments.fig6 import run_fig6

    result = run_fig6(n_updates=160, seed=11, n_items=8, topology=topology)
    return digest(
        {
            "update_tags": _update_tags(result.proposal.results),
            "replicas": result.replicas,
            "counters": {
                "proposal": result.proposal.final().total_correspondences,
                "conventional": (
                    result.conventional.final().total_correspondences
                ),
            },
            "telemetry": result.telemetry,
        }
    )


def _table1_fingerprint(topology) -> str:
    from repro.experiments.table1 import run_table1

    result = run_table1(n_updates=160, seed=11, n_items=8, topology=topology)
    final = result.proposal.final()
    return digest(
        {
            "update_tags": _update_tags(result.proposal.results),
            "replicas": result.replicas,
            "per_site": {s: final.per_site[s] for s in result.site_names},
            "telemetry": result.telemetry,
        }
    )


class TestPaperTopologyIsSeedPath:
    def test_fig6_digest_byte_identical(self):
        topo = Topology.paper(2, _items(8))
        assert _fig6_fingerprint(None) == _fig6_fingerprint(topo)

    def test_table1_digest_byte_identical(self):
        topo = Topology.paper(2, _items(8))
        assert _table1_fingerprint(None) == _table1_fingerprint(topo)

    def test_wider_flat_layout_matches_n_retailers(self):
        # The flat:N spec is the n_retailers=N seed config, byte for byte.
        from repro.experiments.fig6 import run_fig6

        topo = Topology.parse("flat:4", _items(6))
        a = run_fig6(n_updates=100, seed=3, n_items=6, n_retailers=4)
        b = run_fig6(
            n_updates=100, seed=3, n_items=6, n_retailers=4, topology=topo
        )
        assert _update_tags(a.proposal.results) == _update_tags(
            b.proposal.results
        )
        assert a.replicas == b.replicas
        assert (
            a.proposal.final().total_correspondences
            == b.proposal.final().total_correspondences
        )


class TestTopologySystemEquivalence:
    """System-level equivalence on a mixed driving sequence."""

    @pytest.fixture()
    def drive(self):
        def _drive(topology):
            cfg = paper_config(
                n_items=6,
                seed=7,
                propagate=True,
                trace=True,
                request_timeout=8.0,
                topology=topology,
            )
            s = DistributedSystem.build(cfg)
            item_ids = [p.item for p in s.catalog]
            procs = []
            for i in range(40):
                site = s.config.site_names[i % 3]
                delta = 12.0 if site == s.config.maker else -7.0
                procs.append(s.update(site, item_ids[i % 6], delta))
            s.run()
            for name in s.config.site_names:
                s.sites[name].accelerator.sync_all()
            s.run()
            s.check_invariants(quiescent=True)
            return digest(
                {
                    "results": [
                        f"{p.value.outcome.value}:{p.value.av_requests}"
                        f":{p.value.finished_at!r}"
                        for p in procs
                    ],
                    "replicas": {
                        n: site.store.as_dict()
                        for n, site in s.sites.items()
                    },
                    "sent": s.stats.sent_total,
                    "correspondences": s.stats.correspondences_total,
                }
            )

        return _drive

    def test_mixed_sequence_byte_identical(self, drive):
        items = [f"item{i}" for i in range(6)]
        assert drive(None) == drive(Topology.paper(2, items))
