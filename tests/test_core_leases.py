"""AV grant leases: granted-but-unacked volume reverts, never vanishes."""

import pytest

from repro.cluster import build_paper_system
from repro.net import ReliabilityParams
from repro.net.message import Message

PARAMS = ReliabilityParams(
    ack_timeout=3.0,
    backoff=2.0,
    jitter=0.0,
    max_attempts=2,
    probe_interval=4.0,
    lease_timeout=10.0,
)

ITEM = "item0"


def make_system(**kw):
    defaults = dict(
        n_items=1,
        n_retailers=1,  # transfers can only target the maker
        initial_stock=100.0,
        seed=0,
        request_timeout=5.0,
        max_rounds=1,
        reliability=PARAMS,
    )
    defaults.update(kw)
    return build_paper_system(**defaults)


class _Recorder:
    """Stand-in obs hub capturing lease lifecycle events."""

    def __init__(self):
        self.events = []

    def emit(self, name, now, **fields):
        self.events.append((name, fields))

    def names(self):
        return [name for name, _ in self.events]


class TestLeaseLifecycle:
    def test_grant_transfer_ack_discharges(self):
        system = make_system()
        maker = system.site("site0").accelerator
        proc = system.update("site1", ITEM, -60)  # local AV is 50: gather
        system.run()
        assert proc.value.committed
        assert maker.leases.opened == 1
        assert maker.leases.discharged == 1
        assert maker.leases.reverted == 0
        assert maker.leases.open_leases == 0
        # AV fully accounted: maker gave 10, site1 consumed 60 of 60.
        assert system.av_total(ITEM) == pytest.approx(40.0)

    def test_lost_reply_reverts_lease(self):
        system = make_system()
        faults = system.network.faults
        maker = system.site("site0").accelerator
        av_before = maker.av_table.get(ITEM)
        # Forward path clean (the request arrives, the grant happens);
        # reply path dead (the granted volume never reaches site1).
        faults.link_down("site0", "site1")
        proc = system.update("site1", ITEM, -60)
        system.run(until=30.0)
        assert proc.value is not None and not proc.value.committed
        assert maker.leases.opened == 1
        faults.link_up("site0", "site1")
        system.run()
        # The probe's definitive "not received" reclaimed the volume.
        assert maker.leases.reverted == 1
        assert maker.leases.open_leases == 0
        assert maker.av_table.get(ITEM) == pytest.approx(av_before)
        assert system.av_total(ITEM) == pytest.approx(100.0)

    def test_ack_racing_expiry_resolves_once(self):
        # lease_timeout between the one-way and round-trip latency: the
        # expiry probe departs while the ack is still in flight.
        params = ReliabilityParams(
            ack_timeout=3.0, jitter=0.0, probe_interval=4.0, lease_timeout=1.5
        )
        system = make_system(reliability=params)
        maker = system.site("site0").accelerator
        proc = system.update("site1", ITEM, -60)
        system.run()
        assert proc.value.committed
        # The ack won: exactly one resolution, no revert, no double-mint.
        assert maker.leases.opened == 1
        assert maker.leases.discharged == 1
        assert maker.leases.reverted == 0
        assert system.av_total(ITEM) == pytest.approx(40.0)

    def test_ack_after_revert_raises_conflict(self):
        system = make_system()
        maker = system.site("site0").accelerator
        recorder = _Recorder()
        maker.obs = recorder
        lease = maker.leases.grant(ITEM, 5.0, "site1")
        maker.leases._revert(lease)
        maker.leases._handle_ack(
            Message(src="site1", dst="site0", kind="av.lease.ack",
                    payload={"lease": lease.lease_id})
        )
        assert recorder.names() == [
            "av.lease.open", "av.lease.revert", "av.lease.conflict"
        ]

    def test_resolution_is_idempotent(self):
        system = make_system()
        maker = system.site("site0").accelerator
        lease = maker.leases.grant(ITEM, 5.0, "site1")
        assert maker.leases.discharge(lease.lease_id)
        assert not maker.leases.discharge(lease.lease_id)
        maker.leases._revert(lease)  # already resolved: no-op
        assert maker.leases.reverted == 0
        assert maker.leases.discharged == 1


class TestHolderSide:
    def test_duplicate_leased_push_not_reapplied(self):
        system = make_system()
        maker = system.site("site0")
        s1 = system.site("site1")
        av_before = s1.accelerator.av_table.get(ITEM)
        lease = maker.accelerator.leases.grant(ITEM, 5.0, "site1")
        maker.accelerator.av_table.take(ITEM, 5.0)
        payload = {
            "item": ITEM,
            "amount": 5.0,
            "sender_av": maker.accelerator.av_table.get(ITEM),
            "lease": lease.lease_id,
        }
        maker.endpoint.send("site1", "av.push", payload, tag="av")
        maker.endpoint.send("site1", "av.push", payload, tag="av")
        system.run()
        # Applied once, acked twice, discharged once.
        assert s1.accelerator.av_table.get(ITEM) == pytest.approx(av_before + 5.0)
        assert s1.accelerator.leases.acks_sent == 2
        assert maker.accelerator.leases.discharged == 1
        assert system.av_total(ITEM) == pytest.approx(100.0)

    def test_receive_records_receipt_once(self):
        system = make_system()
        lt = system.site("site1").accelerator.leases
        assert lt.receive("site0", 7) is True
        assert lt.receive("site0", 7) is False
        system.run()
        assert lt.acks_sent == 2

    def test_outstanding_view(self):
        system = make_system()
        lt = system.site("site0").accelerator.leases
        lt.grant(ITEM, 5.0, "site1")
        lt.grant(ITEM, 2.5, "site1")
        assert lt.outstanding() == pytest.approx(7.5)
        assert lt.outstanding(ITEM) == pytest.approx(7.5)
        assert lt.outstanding("other") == 0.0


class TestSanitizerIntegration:
    def test_clean_run_audits_clean(self):
        system = make_system(sanitize=True)
        proc = system.update("site1", ITEM, -60)
        system.run()
        assert proc.value.committed
        report = system.sanitizer.finish()
        assert report.ok
        assert not report.by_rule("lease.unresolved")
        assert report.counters["leases_opened"] == 1
        assert report.counters["leases_discharged"] == 1

    def test_leased_loss_is_covered_not_warned(self):
        system = make_system(sanitize=True)
        faults = system.network.faults
        faults.link_down("site0", "site1")
        system.update("site1", ITEM, -60)
        system.run(until=30.0)
        faults.link_up("site0", "site1")
        system.run()
        report = system.sanitizer.finish()
        assert report.ok
        # The dropped grant reply was lease-covered: counted, not warned.
        assert report.counters["lease_covered_drops"] == 1
        assert not report.by_rule("av.grant-lost")
        assert report.counters["leases_reverted"] == 1
