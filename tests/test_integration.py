"""Cross-module integration tests: full runs, faults, trace determinism."""

import pytest

from repro.cluster import build_paper_system
from repro.core import UpdateOutcome
from repro.experiments import make_paper_trace
from repro.workload import run_closed, run_open, split_by_site


class TestPaperScenarioEndToEnd:
    def test_thousand_update_run_invariants(self):
        system = build_paper_system(n_items=10, seed=42)
        trace = make_paper_trace(1000, seed=42, n_items=10)
        results = run_closed(system, trace)
        assert len(results) == 1000
        system.check_invariants()
        committed = sum(1 for r in results if r.committed)
        assert committed / len(results) > 0.9

    def test_trace_fingerprint_deterministic(self):
        def run():
            system = build_paper_system(n_items=5, seed=9, trace=True)
            trace = make_paper_trace(200, seed=9, n_items=5)
            run_closed(system, trace)
            return system.tracer.fingerprint(), len(system.tracer)

        assert run() == run()

    def test_av_circulates_maker_to_retailers(self):
        """Net AV flow goes from the minting maker to consuming retailers."""
        system = build_paper_system(n_items=5, seed=1)
        trace = make_paper_trace(600, seed=1, n_items=5)
        run_closed(system, trace)
        maker_granted = system.maker.accelerator.delay.volume_granted
        retailer_granted = sum(
            r.accelerator.delay.volume_granted for r in system.retailers
        )
        assert maker_granted > retailer_granted

    def test_open_and_closed_drivers_commit_same_updates(self):
        """Arrival discipline affects interleaving, not business outcomes
        (this workload never runs globally dry)."""
        trace = make_paper_trace(150, seed=5, n_items=10)

        sys_closed = build_paper_system(n_items=10, seed=5)
        closed = run_closed(sys_closed, trace)

        sys_open = build_paper_system(n_items=10, seed=5)
        open_ = run_open(sys_open, split_by_site(trace), interarrival=3.0)

        assert sum(1 for r in closed if r.committed) == 150
        assert sum(1 for r in open_ if r.committed) == 150
        sys_closed.check_invariants()
        sys_open.check_invariants()


class TestFaultsIntegration:
    def test_partition_isolates_but_local_updates_continue(self):
        system = build_paper_system(
            n_items=2, initial_stock=90.0, seed=0, request_timeout=5.0
        )
        system.network.faults.partition([["site0"], ["site1", "site2"]])

        # Local-AV-covered update at a retailer still commits.
        p1 = system.update("site1", "item0", -20)
        system.run()
        assert p1.value.committed and p1.value.local_only

        # A transfer that must cross the partition can still be served
        # by the same-side peer (site2).
        p2 = system.update("site1", "item0", -35)
        system.run()
        assert p2.value.committed
        assert p2.value.av_requests >= 1

        system.network.faults.heal()
        p3 = system.update("site1", "item0", -30)
        system.run()
        assert p3.value.committed

    def test_maker_crash_recover_cycle(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, request_timeout=5.0
        )
        ITEM = "item0"
        # Drain retailer AV so the next update needs the maker.
        p = system.update("site1", ITEM, -30)
        system.run()
        assert p.value.committed

        system.network.faults.crash("site0")
        # site2 still has 30 AV; believed-richest will find it after the
        # crashed maker is excluded from live_peers.
        p = system.update("site1", ITEM, -20)
        system.run()
        assert p.value.committed

        # Now the system (minus maker) is nearly dry: a big ask fails.
        p = system.update("site1", ITEM, -35)
        system.run()
        assert p.value.outcome is UpdateOutcome.REJECTED

        system.network.faults.recover("site0")
        p = system.update("site1", ITEM, -35)
        system.run()
        assert p.value.committed
        system.check_invariants()

    def test_crashed_grantor_loses_no_volume(self):
        """AV held by a crashed site is unavailable but not destroyed."""
        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, request_timeout=5.0
        )
        system.network.faults.crash("site0")
        p = system.update("site1", "item0", -50)
        system.run()
        # 30 (own) + 30 (site2) = 60 reachable >= 50 -> commits.
        assert p.value.committed
        # Total AV = 90 - 50 = 40, of which 30 sits at the dead maker.
        assert system.av_total("item0") == 40.0
        assert system.site("site0").av_table.get("item0") == 30.0


class TestMixedCatalogIntegration:
    def test_delay_and_immediate_interleave_cleanly(self):
        system = build_paper_system(
            n_items=4, initial_stock=60.0, regular_fraction=0.5, seed=0
        )
        procs = [
            system.update("site1", "item0", -10),  # delay
            system.update("site2", "item2", -10),  # immediate
            system.update("site0", "item1", +10),  # delay mint
            system.update("site1", "item3", -5),   # immediate
        ]
        system.run()
        assert all(p.value.committed for p in procs)
        system.check_invariants()
        # Tags kept separate for accounting.
        assert system.stats.by_tag["imm"] > 0
        assert system.stats.by_tag.get("av", 0) == 0  # all delay were local
