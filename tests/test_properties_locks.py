"""Stateful property test for the lock manager.

A hypothesis rule machine drives random acquire/release sequences and
checks the safety invariants after every step:

* never two holders when one is exclusive;
* FIFO queue never starves (every waiter is eventually granted once all
  earlier conflicting holders release — checked by full teardown drain);
* internal bookkeeping stays consistent.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.db import LockManager, LockMode
from repro.sim import Environment

OWNERS = [f"p{i}" for i in range(5)]
ITEMS = ["A", "B"]


class LockMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.lm = LockManager(self.env)
        #: (item, owner) -> granted event for requests we issued
        self.requests = {}

    # -------------------------------------------------------------- #
    # rules
    # -------------------------------------------------------------- #

    @rule(owner=st.sampled_from(OWNERS), item=st.sampled_from(ITEMS),
          exclusive=st.booleans())
    def acquire(self, owner, item, exclusive):
        key = (item, owner)
        if key in self.requests:
            return  # one outstanding request per (item, owner) in this model
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        held = self.lm.holders(item).get(owner)
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            if len(self.lm.holders(item)) > 1:
                return  # upgrade with other holders raises; out of scope
        self.requests[key] = self.lm.acquire(item, owner, mode)

    @rule(owner=st.sampled_from(OWNERS), item=st.sampled_from(ITEMS))
    def release(self, owner, item):
        if owner not in self.lm.holders(item):
            return
        self.lm.release(item, owner)
        self.requests.pop((item, owner), None)

    # -------------------------------------------------------------- #
    # invariants
    # -------------------------------------------------------------- #

    @invariant()
    def exclusive_means_alone(self):
        for item in ITEMS:
            holders = self.lm.holders(item)
            if any(m is LockMode.EXCLUSIVE for m in holders.values()):
                assert len(holders) == 1, holders

    @invariant()
    def granted_requests_hold_the_lock(self):
        for (item, owner), event in self.requests.items():
            if event.triggered:
                held = self.lm.holders(item).get(owner)
                assert held is not None, (item, owner)

    @invariant()
    def waiting_count_matches_ungranted(self):
        for item in ITEMS:
            ungranted = sum(
                1
                for (i, _o), ev in self.requests.items()
                if i == item and not ev.triggered
            )
            assert self.lm.waiting(item) == ungranted

    def teardown(self):
        # Drain: releasing every holder repeatedly must grant every
        # queued waiter (no starvation, no lost wakeups).
        for _ in range(len(OWNERS) * len(ITEMS) * 3):
            progressed = False
            for item in ITEMS:
                for owner in list(self.lm.holders(item)):
                    self.lm.release(item, owner)
                    self.requests.pop((item, owner), None)
                    progressed = True
            if not progressed:
                break
        for (item, owner), event in self.requests.items():
            assert event.triggered, f"starved: {owner} on {item}"
            # they were granted during drain; release to leave clean
        for item in ITEMS:
            assert self.lm.waiting(item) == 0


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
