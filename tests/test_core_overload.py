"""Overload layer: admission, breaker, backpressure, degradation ring.

Unit tests drive an :class:`OverloadController` against a stub
accelerator (pure state-machine checks, no engine); integration tests
build real systems to show sheds surface as typed results, the layer is
inert when disabled, and an amply-provisioned surge demotes nothing.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DistributedSystem, paper_config
from repro.core.overload import (
    ALLOWED_TRANSITIONS,
    CircuitBreaker,
    DegradationState,
    OverloadController,
    OverloadParams,
    OverloadStateError,
)
from repro.core.types import UpdateOutcome

# ---------------------------------------------------------------------- #
# stub accelerator: just enough surface for the controller
# ---------------------------------------------------------------------- #


class StubEndpoint:
    def __init__(self):
        self.handlers = {}
        self.sent = []

    def on(self, kind, handler):
        self.handlers[kind] = handler

    def send(self, dst, kind, payload, tag=None):
        self.sent.append((dst, kind, payload))


class StubObs:
    def __init__(self):
        self.events = []
        self.counts = {}

    def emit(self, kind, now, **fields):
        self.events.append((kind, now, fields))

    def count(self, name, n=1):
        self.counts[name] = self.counts.get(name, 0) + n

    def gauge_set(self, name, value, now):
        pass


class StubLocks:
    def __init__(self):
        self.waiting = 0

    def total_waiting(self):
        return self.waiting


class StubAccel:
    site = "site1"
    base_site = "site0"

    def __init__(self):
        self.endpoint = StubEndpoint()
        self.obs = StubObs()
        self.locks = StubLocks()
        self.owed = {}
        self.now = 0.0
        self.sync_calls = 0

    def live_peers(self):
        return []

    def sync_all(self):
        self.sync_calls += 1
        self.owed.clear()


def make_controller(**params):
    accel = StubAccel()
    defaults = dict(
        inflight_budget=4, backlog_budget=4, lock_wait_budget=4,
        recover_hold=5.0,
    )
    defaults.update(params)
    return accel, OverloadController(accel, OverloadParams(**defaults))


LEGAL = {(a.value, b.value) for a, b in ALLOWED_TRANSITIONS}


# ---------------------------------------------------------------------- #
# params validation
# ---------------------------------------------------------------------- #


class TestParams:
    def test_defaults_valid(self):
        OverloadParams()

    @pytest.mark.parametrize("bad", [
        {"inflight_budget": 0},
        {"backlog_budget": 0},
        {"retry_after": 0.0},
        {"breaker_threshold": 0},
        {"breaker_cooldown": 0.0},
        {"degraded_grant_fraction": 0.0},
        {"degraded_grant_fraction": 1.5},
        # threshold ordering: recover <= strain <= degrade
        {"recover_ratio": 0.7, "strain_ratio": 0.6},
        {"strain_ratio": 0.95, "degrade_ratio": 0.9},
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            OverloadParams(**bad)


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(threshold=3, cooldown=10.0)
        assert not br.record_failure(1.0)
        assert not br.record_failure(2.0)
        assert br.record_failure(3.0)
        assert br.state == CircuitBreaker.OPEN
        assert br.trips == 1
        allowed, retry = br.allow(4.0)
        assert not allowed and retry > 0

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(threshold=2, cooldown=10.0)
        br.record_failure(1.0)
        br.record_success()
        assert not br.record_failure(2.0)
        assert br.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_recloses(self):
        br = CircuitBreaker(threshold=1, cooldown=10.0)
        br.record_failure(0.0)
        allowed, _ = br.allow(10.0)  # cooldown expired: one probe through
        assert allowed and br.state == CircuitBreaker.HALF_OPEN
        # everyone else is held while the probe is in flight
        assert br.allow(10.5) == (False, 2.5)
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_retrips(self):
        br = CircuitBreaker(threshold=1, cooldown=10.0)
        br.record_failure(0.0)
        br.allow(10.0)
        assert br.record_failure(11.0)
        assert br.state == CircuitBreaker.OPEN
        assert br.trips == 2
        assert br.pressure(11.0) == 1.0
        assert br.pressure(21.0) == 0.0  # cooldown elapsed: no pressure


# ---------------------------------------------------------------------- #
# admission + backpressure (stub accel)
# ---------------------------------------------------------------------- #


class TestAdmission:
    def test_sheds_exactly_over_budget(self):
        _accel, ctl = make_controller(inflight_budget=2)
        assert ctl.admit(1.0) is None
        ctl.begin(1.0)
        assert ctl.admit(1.0) is None
        ctl.begin(1.0)
        retry = ctl.admit(1.0)
        assert retry == ctl.params.retry_after > 0
        ctl.end(2.0)
        assert ctl.admit(2.0) is None
        assert ctl.peak_inflight == 2

    def test_record_shed_emits_observable_event(self):
        accel, ctl = make_controller()
        ctl.record_shed(3.0, 5.0)
        assert ctl.shed == 1
        kinds = [k for k, _t, _f in accel.obs.events]
        assert "ovl.shed" in kinds
        _, _, fields = accel.obs.events[0]
        assert fields["retry_after"] == 5.0


class TestBackpressure:
    def test_backlog_over_budget_flushes_inline_once_per_timestamp(self):
        accel, ctl = make_controller(backlog_budget=2)
        accel.owed = {"a": 1.0, "b": 1.0, "c": 1.0}
        ctl.note_backlog(5.0)
        assert accel.sync_calls == 1
        assert ctl.flushes == 1
        # same timestamp again: no double flush
        accel.owed = {"a": 1.0, "b": 1.0, "c": 1.0}
        ctl.note_backlog(5.0)
        assert accel.sync_calls == 1
        assert ctl.peak_backlog == 3

    def test_under_budget_never_flushes(self):
        accel, ctl = make_controller(backlog_budget=4)
        accel.owed = {"a": 1.0}
        ctl.note_backlog(5.0)
        assert accel.sync_calls == 0


# ---------------------------------------------------------------------- #
# degradation hooks
# ---------------------------------------------------------------------- #


class TestDegradationHooks:
    def test_widened_grant_only_under_strain(self):
        _accel, ctl = make_controller()
        assert ctl.widened_grant(10.0, 2.0) is None
        ctl.state = DegradationState.STRAINED
        assert ctl.widened_grant(10.0, 2.0) == 9.0
        # never more than held, never less than the ask
        assert ctl.widened_grant(1.0, 3.0) == 1.0

    def test_filter_peers_drops_degraded_unless_empty(self):
        _accel, ctl = make_controller()
        ctl.peer_states = {"site2": "degraded", "site3": "normal"}
        assert ctl.filter_peers(["site2", "site3"]) == ["site3"]
        ctl.peer_states["site3"] = "degraded"
        assert ctl.filter_peers(["site2", "site3"]) == ["site2", "site3"]

    def test_degraded_read_bound_floor_and_lag(self):
        _accel, ctl = make_controller()
        assert ctl.degraded_read_bound(50.0) is None
        ctl.state = DegradationState.DEGRADED
        ctl.note_sync_pass(40.0)
        ctl.state = DegradationState.DEGRADED  # note_sync_pass re-evaluates
        assert ctl.degraded_read_bound(50.0) == 10.0
        assert ctl.degraded_read_bound(40.2) == ctl.params.stale_read_floor

    def test_sync_interval_halved_under_strain(self):
        _accel, ctl = make_controller()
        assert ctl.sync_interval(30.0) == 30.0
        ctl.state = DegradationState.DEGRADED
        assert ctl.sync_interval(30.0) == 15.0


# ---------------------------------------------------------------------- #
# state machine: legality + monotone ring
# ---------------------------------------------------------------------- #


class TestStateMachine:
    def test_illegal_edge_raises(self):
        _accel, ctl = make_controller()
        with pytest.raises(OverloadStateError):
            ctl._transition(DegradationState.DEGRADED, 1.0)

    def test_full_pressure_walks_to_degraded_and_back(self):
        accel, ctl = make_controller(inflight_budget=2)
        ctl.begin(1.0)
        ctl.begin(2.0)   # ratio 1.0 >= strain: NORMAL -> STRAINED
        ctl.evaluate(2.5)  # still full: STRAINED -> DEGRADED (one edge/step)
        assert ctl.state is DegradationState.DEGRADED
        ctl.end(3.0)
        ctl.end(4.0)  # ratio 0 <= recover: -> RECOVERING
        assert ctl.state is DegradationState.RECOVERING
        ctl.evaluate(4.0 + ctl.params.recover_hold)
        assert ctl.state is DegradationState.NORMAL
        assert [(f, t) for _n, f, t in ctl.transitions] == [
            ("normal", "strained"), ("strained", "degraded"),
            ("degraded", "recovering"), ("recovering", "normal"),
        ]
        # every transition was broadcast to peers (none here) and logged
        assert all((f, t) in LEGAL for _n, f, t in ctl.transitions)

    def test_relapse_from_recovering(self):
        _accel, ctl = make_controller(inflight_budget=2)
        ctl.begin(1.0)
        ctl.begin(2.0)
        ctl.evaluate(2.5)
        ctl.end(3.0)
        ctl.end(3.5)
        assert ctl.state is DegradationState.RECOVERING
        ctl.begin(4.0)
        ctl.begin(4.5)  # full pressure again: relapse
        assert ctl.state is DegradationState.DEGRADED

    @given(st.lists(
        st.sampled_from(["begin", "end", "backlog", "timeout", "success", "calm"]),
        max_size=60,
    ))
    @settings(derandomize=True, deadline=None, max_examples=200)
    def test_transition_log_is_a_legal_contiguous_walk(self, seq):
        """Property: whatever load history arrives, every edge the
        controller takes is in ALLOWED_TRANSITIONS, the log is a
        contiguous walk from NORMAL, and finalize lands at NORMAL."""
        accel, ctl = make_controller(breaker_cooldown=30.0)
        now = 0.0
        for op in seq:
            now += 1.0
            if op == "begin":
                if ctl.admit(now) is None:
                    ctl.begin(now)
                else:
                    ctl.record_shed(now, ctl.params.retry_after)
            elif op == "end":
                if ctl.inflight > 0:
                    ctl.end(now)
            elif op == "backlog":
                accel.owed[f"item{len(accel.owed)}"] = 1.0
                ctl.note_backlog(now)
            elif op == "timeout":
                ctl.record_2pc_timeout(now)
            elif op == "success":
                ctl.record_2pc_success(now)
            else:  # calm: drain everything, let the hold elapse
                while ctl.inflight:
                    ctl.end(now)
                accel.owed.clear()
                now += ctl.params.recover_hold + 1.0
                ctl.evaluate(now)
        while ctl.inflight:
            ctl.end(now)
        accel.owed.clear()
        ctl.finalize(now + 100.0)  # past any breaker cooldown

        prev = DegradationState.NORMAL.value
        for _t, frm, to in ctl.transitions:
            assert frm == prev, "transition log is not contiguous"
            assert (frm, to) in LEGAL, f"illegal edge {frm}->{to}"
            prev = to
        assert ctl.state is DegradationState.NORMAL
        assert ctl.peak_inflight <= ctl.params.inflight_budget


# ---------------------------------------------------------------------- #
# integration: real systems
# ---------------------------------------------------------------------- #


def drive(system, ops):
    procs = [system.update(site, item, delta) for site, item, delta in ops]
    system.run()
    return [p.value for p in procs]


class TestIntegration:
    def test_disabled_layer_is_inert(self):
        config = paper_config(seed=7)
        assert config.overload is None
        system = DistributedSystem.build(config)
        for site in system.sites.values():
            assert site.accelerator.overload is None

    def test_disabled_layer_runs_are_byte_identical(self):
        ops = [("site1", "item0", -3.0), ("site2", "item1", -2.0),
               ("site0", "item0", +5.0)]

        def one_run():
            system = DistributedSystem.build(
                paper_config(seed=11, n_items=4, sanitize=True)
            )
            results = drive(system, ops)
            report = system.sanitizer.finish()
            assert not any(
                k.startswith("overload") for k in report.counters
            )
            return (
                [r.outcome.value for r in results],
                {n: {i: system.sites[n].store.value(i)
                     for i, _v in sorted(system.sites[n].store.items())}
                 for n in sorted(system.sites)},
            )

        assert one_run() == one_run()

    def test_surge_sheds_surface_as_typed_results(self):
        config = paper_config(
            seed=3,
            n_items=4,
            regular_fraction=0.0,  # immediate items: 2PC yields, so the
            initial_stock=500.0,   # burst actually stacks up in flight
            overload=OverloadParams(inflight_budget=2, lock_wait_budget=2),
        )
        system = DistributedSystem.build(config)
        # open-loop burst: all spawned at t=0, far over the budget of 2
        results = drive(
            system, [("site1", "item0", -1.0) for _ in range(10)]
        )
        shed = [r for r in results if r.outcome is UpdateOutcome.SHED]
        assert shed, "burst over budget must shed"
        assert all(r.retry_after > 0 for r in shed)
        assert all(not r.committed for r in shed)
        ctl = system.sites["site1"].accelerator.overload
        assert ctl.shed == len(shed)
        assert ctl.peak_inflight <= 2

    def test_surge_with_ample_headroom_demotes_zero_items(self):
        """Regression: a surge the delay path can absorb must never
        trigger demotion — degradation is a last resort, not a reflex."""
        from repro.experiments.chaos import SMALL_SCENARIOS, run_chaos_scenario

        base = next(s for s in SMALL_SCENARIOS if s.name == "overload")
        ample = OverloadParams(
            inflight_budget=200, backlog_budget=400, lock_wait_budget=200
        )
        scenario = replace(
            base,
            name="overload-ample",
            config_overrides={**base.config_overrides, "overload": ample},
            extra_checks=None,  # the standard checks demand demotions > 0
        )
        result = run_chaos_scenario(scenario, n_updates=45)
        assert result.ok
        counters = result.report.counters
        assert counters.get("overload_demotions", 0) == 0
        assert counters.get("overload_promotions", 0) == 0
