"""Oracle test: the AV mechanism is *exact* about global availability.

Closed-loop (one update at a time), integral volumes, generous retry
budget: a decrement must commit iff the system-wide AV pool covers it —
no site ever knows the global number, yet the gathering protocol
(take-all + believed-richest + ceil-half grants + progress-gated
rounds) discovers it exactly. A shadow accounting of the global pool is
the oracle; hypothesis drives arbitrary update sequences against it.

Why the protocol is exact here: every full pass over the peers either
reaches the target or collects ceil(half) of every nonempty peer — an
integral amount ≥ 1 — so passes repeat while volume remains; the only
way to run out of passes with progress still happening would need more
rounds than log2(pool), far below the budget we configure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_paper_system
from repro.core import UpdateOutcome

SITES = ["site0", "site1", "site2"]
ITEMS = ["item0", "item1"]

ops = st.lists(
    st.tuples(
        st.sampled_from(SITES),
        st.sampled_from(ITEMS),
        st.integers(min_value=-60, max_value=40),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(ops, st.integers(min_value=0, max_value=100))
def test_commit_iff_global_av_covers(op_list, seed):
    system = build_paper_system(
        n_items=2,
        initial_stock=60.0,
        seed=seed,
        max_rounds=64,  # generous: exactness needs ~log2(pool) passes
    )
    # Shadow of the global AV pool per item (the oracle's whole state).
    pool = {item: 60.0 for item in ITEMS}

    def driver(env):
        for site, item, delta in op_list:
            result = yield system.update(site, item, float(delta))
            if delta >= 0:
                assert result.outcome is UpdateOutcome.COMMITTED
                pool[item] += delta
            elif -delta <= pool[item]:
                assert result.outcome is UpdateOutcome.COMMITTED, (
                    f"false reject: need {-delta}, pool {pool[item]}"
                )
                pool[item] += delta
            else:
                assert result.outcome is UpdateOutcome.REJECTED, (
                    f"false commit: need {-delta}, pool {pool[item]}"
                )
        return True

    proc = system.env.process(driver(system.env))
    system.run()
    assert proc.ok, proc.value

    # The shadow pool and the real distributed pool agree exactly.
    for item in ITEMS:
        assert system.av_total(item) == pool[item]
        assert system.collector.ledger.true_value(item) == pool[item]
