"""Unit tests for workload generators, drivers and traces."""

import numpy as np
import pytest

from repro.cluster import build_paper_system
from repro.workload import (
    HotspotWorkload,
    PaperWorkload,
    WorkloadEvent,
    WorkloadTrace,
    ZipfWorkload,
    run_closed,
    run_open,
    split_by_site,
)


def make_paper(**kw):
    defaults = dict(
        maker="site0",
        retailers=["site1", "site2"],
        items=["A", "B", "C"],
        initial_stock=100.0,
        rng=np.random.default_rng(0),
    )
    defaults.update(kw)
    return PaperWorkload(**defaults)


class TestPaperWorkload:
    def test_roundrobin_site_order(self):
        events = list(make_paper().events(6))
        assert [e.site for e in events] == [
            "site0", "site1", "site2", "site0", "site1", "site2",
        ]

    def test_maker_increases_retailers_decrease(self):
        for e in make_paper().events(300):
            if e.site == "site0":
                assert 1 <= e.delta <= 20
            else:
                assert -10 <= e.delta <= -1

    def test_delta_caps_scale_with_fractions(self):
        gen = make_paper(increase_fraction=0.5, decrease_fraction=0.02)
        deltas_maker = [e.delta for e in gen.events(300) if e.site == "site0"]
        deltas_ret = [e.delta for e in gen.events(300) if e.site != "site0"]
        assert max(deltas_maker) > 20  # cap now 50
        assert min(deltas_ret) >= -2

    def test_integer_deltas_default(self):
        assert all(float(e.delta).is_integer() for e in make_paper().events(50))

    def test_float_deltas_option(self):
        gen = make_paper(integer_deltas=False)
        assert any(not float(e.delta).is_integer() for e in gen.events(50))

    def test_random_site_order(self):
        gen = make_paper(site_order="random", rng=np.random.default_rng(1))
        sites = {e.site for e in gen.events(100)}
        assert sites == {"site0", "site1", "site2"}

    def test_deterministic_given_seed(self):
        a = list(make_paper(rng=np.random.default_rng(7)).events(50))
        b = list(make_paper(rng=np.random.default_rng(7)).events(50))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            make_paper(retailers=[])
        with pytest.raises(ValueError):
            make_paper(items=[])
        with pytest.raises(ValueError):
            make_paper(site_order="bogus")
        with pytest.raises(ValueError):
            make_paper(increase_fraction=0.0)


class TestZipfAndHotspot:
    def test_zipf_skews_item_popularity(self):
        gen = ZipfWorkload(
            maker="site0",
            retailers=["site1"],
            items=[f"i{k}" for k in range(20)],
            initial_stock=100.0,
            rng=np.random.default_rng(0),
            skew=1.5,
        )
        from collections import Counter

        counts = Counter(e.item for e in gen.events(2000))
        assert counts["i0"] > counts.get("i19", 0) * 2

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(
                maker="m", retailers=["r"], items=["A"],
                initial_stock=1.0, rng=np.random.default_rng(0), skew=1.0,
            )

    def test_hotspot_redirects_hot_site_decrements(self):
        rng = np.random.default_rng(0)
        base = make_paper(rng=np.random.default_rng(1))
        hot = HotspotWorkload(base, "site1", ["A"], hot_fraction=1.0, rng=rng)
        for e in hot.events(100):
            if e.site == "site1" and e.delta < 0:
                assert e.item == "A"

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotWorkload(make_paper(), "site1", [], 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            HotspotWorkload(make_paper(), "site1", ["A"], 2.0, np.random.default_rng(0))


class TestTrace:
    def test_capture_and_replay(self):
        trace = WorkloadTrace.capture(make_paper(), 20)
        assert len(trace) == 20
        assert list(trace.events(20)) == list(trace)
        assert trace[0].site == "site0"

    def test_replay_beyond_capture_rejected(self):
        trace = WorkloadTrace.capture(make_paper(), 5)
        with pytest.raises(ValueError):
            list(trace.events(6))

    def test_save_load_round_trip(self, tmp_path):
        trace = WorkloadTrace.capture(make_paper(), 30)
        path = tmp_path / "trace.tsv"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded == trace

    def test_load_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("site0\tA\n")
        with pytest.raises(ValueError, match="malformed"):
            WorkloadTrace.load(path)

    def test_empty_trace_save_load(self, tmp_path):
        path = tmp_path / "empty.tsv"
        WorkloadTrace([]).save(path)
        assert len(WorkloadTrace.load(path)) == 0

    def test_split_by_site(self):
        trace = WorkloadTrace.capture(make_paper(), 9)
        split = split_by_site(trace)
        assert set(split) == {"site0", "site1", "site2"}
        assert all(len(v) == 3 for v in split.values())


class TestDrivers:
    def test_run_closed_returns_ordered_results(self):
        system = build_paper_system(n_items=3, initial_stock=100.0)
        events = [
            WorkloadEvent("site1", "item0", -5),
            WorkloadEvent("site2", "item1", -5),
            WorkloadEvent("site0", "item2", +5),
        ]
        results = run_closed(system, events)
        assert len(results) == 3
        assert [r.request.site for r in results] == ["site1", "site2", "site0"]
        assert all(r.committed for r in results)

    def test_run_closed_on_complete_hook(self):
        system = build_paper_system(n_items=1, initial_stock=100.0)
        seen = []
        run_closed(
            system,
            [WorkloadEvent("site1", "item0", -1)] * 3,
            on_complete=lambda i, e, r: seen.append(i),
        )
        assert seen == [0, 1, 2]

    def test_run_closed_spacing_advances_clock(self):
        system = build_paper_system(n_items=1, initial_stock=100.0)
        run_closed(
            system, [WorkloadEvent("site1", "item0", -1)] * 4, spacing=10.0
        )
        assert system.env.now >= 30.0

    def test_run_open_routes_streams(self):
        system = build_paper_system(n_items=2, initial_stock=100.0)
        per_site = {
            "site1": [WorkloadEvent("site1", "item0", -1)] * 5,
            "site2": [WorkloadEvent("site2", "item1", -1)] * 5,
        }
        results = run_open(system, per_site, interarrival=2.0)
        assert len(results) == 10

    def test_run_open_rejects_misrouted_event(self):
        system = build_paper_system(n_items=1, initial_stock=100.0)
        per_site = {"site1": [WorkloadEvent("site2", "item0", -1)]}
        with pytest.raises(ValueError, match="wrong site"):
            run_open(system, per_site, interarrival=1.0)


class TestTraceSummary:
    def test_summary_aggregates(self):
        trace = WorkloadTrace(
            [
                WorkloadEvent("site0", "A", +10),
                WorkloadEvent("site1", "A", -4),
                WorkloadEvent("site2", "B", -6),
            ]
        )
        s = trace.summary()
        assert s.events == 3
        assert s.per_site == {"site0": 1, "site1": 1, "site2": 1}
        assert s.per_item == {"A": 2, "B": 1}
        assert s.net_delta == {"A": 6, "B": -6}
        assert s.increments == 1 and s.decrements == 2
        assert s.volume_in == 10 and s.volume_out == 10
        assert s.supply_demand_ratio == 1.0
        assert "supply/demand" in str(s)

    def test_paper_trace_is_balanced(self):
        """The calibrated paper workload runs near supply/demand parity."""
        from repro.experiments import make_paper_trace

        summary = make_paper_trace(900, seed=0, n_items=10).summary()
        assert 0.8 < summary.supply_demand_ratio < 1.25

    def test_empty_trace_summary(self):
        s = WorkloadTrace([]).summary()
        assert s.events == 0
        assert s.supply_demand_ratio == float("inf")


class TestZipfSampler:
    """The truncated Zipf sampler feeding the scale-out workloads."""

    def test_seed_and_skew_reproducibility(self):
        from repro.workload import ZipfSampler

        a = ZipfSampler(50, 1.2, np.random.default_rng(7))
        b = ZipfSampler(50, 1.2, np.random.default_rng(7))
        assert [a.draw_rank() for _ in range(200)] == [
            b.draw_rank() for _ in range(200)
        ]
        c = ZipfSampler(50, 1.2, np.random.default_rng(8))
        assert [a.draw_rank() for _ in range(200)] != [
            c.draw_rank() for _ in range(200)
        ]

    def test_probabilities_normalised_and_monotone(self):
        from repro.workload import ZipfSampler

        s = ZipfSampler(20, 1.5, np.random.default_rng(0))
        probs = [s.probability(r) for r in range(1, 21)]
        assert sum(probs) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_frequency_rank_slope_matches_skew(self):
        """Log-log regression of sampled frequencies ≈ -skew."""
        from repro.workload import ZipfSampler

        skew = 1.3
        s = ZipfSampler(30, skew, np.random.default_rng(3))
        counts = np.zeros(30)
        for _ in range(30_000):
            counts[s.draw_index()] += 1
        head = slice(0, 10)  # the head ranks have tight counts
        slope = np.polyfit(
            np.log(np.arange(1, 31)[head]), np.log(counts[head]), 1
        )[0]
        assert slope == pytest.approx(-skew, abs=0.12)

    def test_rejects_bad_parameters(self):
        from repro.workload import ZipfSampler

        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.1, np.random.default_rng(0))


class TestNormalizeMix:
    def test_normalises_and_sorts(self):
        from repro.workload import normalize_mix

        mix = normalize_mix({"b": 3.0, "a": 1.0})
        assert list(mix) == ["a", "b"]
        assert mix["a"] == pytest.approx(0.25)
        assert mix["b"] == pytest.approx(0.75)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_rejects_degenerate_mixes(self):
        from repro.workload import normalize_mix

        with pytest.raises(ValueError):
            normalize_mix({})
        with pytest.raises(ValueError):
            normalize_mix({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            normalize_mix({"a": 0.0})


class TestTopologyWorkload:
    def _topology(self):
        from repro.cluster import Topology

        return Topology.regional(
            [f"item{i}" for i in range(12)], 2, 3, spread=2
        )

    def test_events_respect_roles_and_interest_sets(self):
        from repro.workload import TopologyWorkload

        topo = self._topology()
        wl = TopologyWorkload(topo, 100.0, np.random.default_rng(1))
        for event in wl.events(300):
            role = topo.role_of(event.site)
            assert role != "aggregator"
            assert event.item in topo.interest_of(event.site)
            if role == "maker":
                assert event.delta > 0
            else:
                assert event.delta < 0

    def test_maker_share_is_respected(self):
        from repro.workload import TopologyWorkload

        topo = self._topology()
        wl = TopologyWorkload(
            topo, 100.0, np.random.default_rng(2), maker_share=1.0 / 3.0
        )
        events = list(wl.events(3000))
        mints = sum(1 for e in events if e.site == topo.maker)
        assert mints / len(events) == pytest.approx(1 / 3, abs=0.04)

    def test_site_mix_skews_leaf_traffic(self):
        from repro.workload import TopologyWorkload

        topo = self._topology()
        leaves = [s for s in topo.names if topo.role_of(s) == "retailer"]
        mix = {leaf: (4.0 if leaf == leaves[0] else 1.0) for leaf in leaves}
        wl = TopologyWorkload(
            topo, 100.0, np.random.default_rng(3), mix=mix
        )
        counts = {leaf: 0 for leaf in leaves}
        for event in wl.events(4000):
            if event.site != topo.maker:
                counts[event.site] += 1
        hot = counts[leaves[0]] / sum(counts.values())
        assert hot == pytest.approx(4.0 / 9.0, abs=0.04)

    def test_deterministic_for_equal_seeds(self):
        from repro.workload import TopologyWorkload

        topo = self._topology()
        a = TopologyWorkload(topo, 100.0, np.random.default_rng(9))
        b = TopologyWorkload(topo, 100.0, np.random.default_rng(9))
        assert list(a.events(100)) == list(b.events(100))

    def test_rejects_mix_naming_non_leaves(self):
        from repro.workload import TopologyWorkload

        topo = self._topology()
        with pytest.raises(ValueError):
            TopologyWorkload(
                topo, 100.0, np.random.default_rng(0), mix={"agg0": 1.0}
            )
