"""Unit tests for the metrics package."""

import pytest

from repro.core.types import (
    UpdateKind,
    UpdateOutcome,
    UpdateRequest,
    UpdateResult,
)
from repro.metrics import (
    AvailabilityTracker,
    CorrespondenceSeries,
    GlobalLedger,
    MetricsCollector,
    csv_table,
    is_monotonic,
    reduction_ratio,
    series_block,
    summarize,
    text_table,
)


def make_result(
    site="site1",
    item="A",
    delta=-5.0,
    kind=UpdateKind.DELAY,
    outcome=UpdateOutcome.COMMITTED,
    local=False,
    issued=0.0,
    finished=1.0,
    av_requests=0,
):
    return UpdateResult(
        request=UpdateRequest(site=site, item=item, delta=delta, issued_at=issued),
        kind=kind,
        outcome=outcome,
        local_only=local,
        finished_at=finished,
        av_requests=av_requests,
    )


class TestGlobalLedger:
    def test_true_value_tracks_deltas(self):
        ledger = GlobalLedger()
        ledger.set_initial("A", 100.0)
        ledger.record_delta("A", -30)
        ledger.record_delta("A", +5)
        assert ledger.true_value("A") == 75.0
        assert ledger.initial_value("A") == 100.0
        assert ledger.committed_deltas == 2

    def test_unknown_item_rejected(self):
        with pytest.raises(KeyError):
            GlobalLedger().record_delta("ghost", 1)

    def test_total_and_views(self):
        ledger = GlobalLedger()
        ledger.set_initial("A", 10.0)
        ledger.set_initial("B", 20.0)
        assert ledger.total() == 30.0
        assert "A" in ledger and len(ledger) == 2
        assert set(ledger.items()) == {"A", "B"}


class TestMetricsCollector:
    def test_record_aggregates(self):
        c = MetricsCollector()
        c.ledger.set_initial("A", 100.0)
        c.record(make_result(local=True))
        c.record(make_result(outcome=UpdateOutcome.REJECTED))
        c.record(make_result(kind=UpdateKind.IMMEDIATE))
        assert c.total == 3
        assert c.committed == 2
        assert c.rejected == 1
        assert c.delay_updates == 2
        assert c.local_delay_updates == 1
        assert c.local_ratio == 0.5
        # only committed deltas hit the ledger
        assert c.ledger.true_value("A") == 90.0

    def test_count_filters(self):
        c = MetricsCollector()
        c.ledger.set_initial("A", 100.0)
        c.record(make_result())
        c.record(make_result(kind=UpdateKind.IMMEDIATE))
        assert c.count(kind=UpdateKind.DELAY) == 1
        assert c.count(outcome=UpdateOutcome.COMMITTED) == 2
        assert c.count(kind=UpdateKind.DELAY, outcome=UpdateOutcome.REJECTED) == 0

    def test_latencies_filtering(self):
        c = MetricsCollector()
        c.ledger.set_initial("A", 100.0)
        c.record(make_result(issued=0, finished=4))
        c.record(make_result(site="site2", issued=0, finished=2))
        c.record(make_result(outcome=UpdateOutcome.REJECTED, issued=0, finished=9))
        assert c.latencies() == [4.0, 2.0]
        assert c.latencies(site="site2") == [2.0]
        assert c.latencies(committed_only=False) == [4.0, 2.0, 9.0]

    def test_av_requests_total(self):
        c = MetricsCollector()
        c.ledger.set_initial("A", 100.0)
        c.record(make_result(av_requests=3))
        c.record(make_result(av_requests=2))
        assert c.av_requests_total() == 5

    def test_empty_local_ratio(self):
        assert MetricsCollector().local_ratio == 1.0


class TestCorrespondenceSeries:
    def test_sample_and_views(self):
        s = CorrespondenceSeries("x")
        s.sample(10, 5.0)
        s.sample(20, 7.0)
        assert s.updates == [10, 20]
        assert s.correspondences == [5.0, 7.0]
        assert s.final() == (20, 7.0)
        assert s.slope() == 0.35
        assert len(s) == 2

    def test_nondecreasing_updates_enforced(self):
        s = CorrespondenceSeries("x")
        s.sample(10, 5.0)
        with pytest.raises(ValueError):
            s.sample(5, 6.0)

    def test_final_on_empty(self):
        with pytest.raises(ValueError):
            CorrespondenceSeries("x").final()

    def test_reduction_ratio(self):
        prop, conv = CorrespondenceSeries("p"), CorrespondenceSeries("c")
        prop.sample(100, 25.0)
        conv.sample(100, 100.0)
        assert reduction_ratio(prop, conv) == 0.75

    def test_reduction_ratio_zero_baseline(self):
        prop, conv = CorrespondenceSeries("p"), CorrespondenceSeries("c")
        prop.sample(10, 0.0)
        conv.sample(10, 0.0)
        assert reduction_ratio(prop, conv) == 0.0

    def test_is_monotonic(self):
        s = CorrespondenceSeries("x")
        s.sample(1, 1.0)
        s.sample(2, 2.0)
        assert is_monotonic(s)
        s.sample(3, 1.5)
        assert not is_monotonic(s)


class TestLatencySummary:
    def test_summary_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.p50 == 2.5
        assert s.max == 4.0

    def test_empty(self):
        assert summarize([]).count == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize([-1.0])

    def test_str(self):
        assert "p90" in str(summarize([1.0]))


class TestAvailabilityTracker:
    def test_window_classification(self):
        t = AvailabilityTracker(10.0, 20.0)
        assert not t.in_fault_window(5)
        assert t.in_fault_window(10)
        assert t.in_fault_window(20)
        assert not t.in_fault_window(21)

    def test_open_window(self):
        t = AvailabilityTracker(10.0)
        assert t.in_fault_window(1e9)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AvailabilityTracker(10.0, 5.0)

    def test_availability_math(self):
        t = AvailabilityTracker(10.0, 20.0)
        t.record(make_result(issued=5, finished=6))  # normal, ok
        t.record(make_result(issued=15, finished=16))  # fault, ok
        t.record(
            make_result(
                issued=16, finished=17, outcome=UpdateOutcome.REJECTED
            )
        )  # fault, fail
        assert t.availability("site1", False) == 1.0
        assert t.availability("site1", True) == 0.5
        assert t.stats("site1", True).attempted == 2
        assert t.sites() == ["site1"]

    def test_silent_site_fully_available(self):
        t = AvailabilityTracker(0.0)
        assert t.availability("ghost", True) == 1.0


class TestReport:
    def test_text_table_alignment(self):
        out = text_table(["a", "long"], [[1, 2.5], [10, 3.0]])
        lines = out.splitlines()
        assert lines[0] == "a  | long"
        assert lines[1] == "---+-----"
        assert lines[2] == "1  | 2.50"
        assert lines[3] == "10 | 3"

    def test_text_table_title(self):
        out = text_table(["a"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            text_table(["a", "b"], [[1]])

    def test_csv(self):
        out = csv_table(["a", "b"], [[1, 2.5]])
        assert out == "a,b\n1,2.500000"

    def test_csv_comma_rejected(self):
        with pytest.raises(ValueError):
            csv_table(["a"], [["x,y"]])

    def test_series_block(self):
        out = series_block("corr", [1, 2], [3.0, 4.0])
        assert "corr" in out
        with pytest.raises(ValueError):
            series_block("x", [1], [1, 2])
