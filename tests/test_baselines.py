"""Unit tests for the three baselines."""

import pytest

from repro.baselines import (
    CENTER,
    CentralizedSystem,
    build_all_immediate_system,
    build_static_escrow_system,
)
from repro.cluster import SystemConfig
from repro.core import UpdateKind, UpdateOutcome


def run_one(system, site, item, delta):
    proc = system.update(site, item, delta)
    system.run()
    assert proc.ok
    return proc.value


class TestCentralized:
    def make(self, **kw):
        return CentralizedSystem(SystemConfig(n_items=2, initial_stock=50.0), **kw)

    def test_every_update_is_one_correspondence(self):
        system = self.make()
        run_one(system, "site1", "item0", -5)
        run_one(system, "site0", "item0", +5)
        assert system.stats.correspondences_total == 2.0
        assert set(system.stats.by_tag) == {"central"}

    def test_server_store_is_authoritative(self):
        system = self.make()
        run_one(system, "site1", "item0", -5)
        assert system.server.store.value("item0") == 45.0
        # client replicas are NOT refreshed without replication
        assert system.clients["site2"].store.value("item0") == 50.0

    def test_negative_rejected_at_server(self):
        system = self.make()
        result = run_one(system, "site1", "item0", -51)
        assert result.outcome is UpdateOutcome.REJECTED
        assert system.server.store.value("item0") == 50.0

    def test_results_recorded_in_collector(self):
        system = self.make()
        run_one(system, "site1", "item0", -5)
        assert system.collector.total == 1
        assert system.collector.ledger.true_value("item0") == 45.0

    def test_replication_mode_refreshes_clients(self):
        system = self.make(replicate=True)
        run_one(system, "site1", "item0", -5)
        system.run()
        for client in system.clients.values():
            assert client.store.value("item0") == 45.0
        # replication costs extra central-tagged messages
        assert system.stats.sent_total == 2 + len(system.clients)

    def test_server_crash_fails_updates_with_timeout(self):
        system = self.make(request_timeout=5.0)
        system.network.faults.crash(CENTER)
        result = run_one(system, "site1", "item0", -5)
        assert result.outcome is UpdateOutcome.FAILED

    def test_kind_is_immediate(self):
        system = self.make()
        assert run_one(system, "site1", "item0", -1).kind is UpdateKind.IMMEDIATE


class TestAllImmediate:
    def test_no_av_entries_anywhere(self):
        system = build_all_immediate_system(
            SystemConfig(n_items=3, initial_stock=10.0)
        )
        for site in system.sites.values():
            assert len(site.av_table) == 0

    def test_update_takes_immediate_path(self):
        system = build_all_immediate_system(
            SystemConfig(n_items=1, initial_stock=10.0)
        )
        result = run_one(system, "site1", "item0", -2)
        assert result.kind is UpdateKind.IMMEDIATE
        assert result.committed
        assert system.stats.correspondences_total == 4.0  # 2(n-1), n=3


class TestStaticEscrow:
    def test_transfers_disabled(self):
        system = build_static_escrow_system(
            SystemConfig(n_items=1, initial_stock=90.0)
        )
        # exhaust site1's static share (30), then one more
        run_one(system, "site1", "item0", -30)
        result = run_one(system, "site1", "item0", -1)
        assert result.outcome is UpdateOutcome.REJECTED
        assert system.stats.sent_total == 0

    def test_peers_unaffected(self):
        system = build_static_escrow_system(
            SystemConfig(n_items=1, initial_stock=90.0)
        )
        run_one(system, "site1", "item0", -30)
        result = run_one(system, "site2", "item0", -30)
        assert result.committed
