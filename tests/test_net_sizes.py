"""Tests for wire-size estimation and byte accounting."""

import pytest

from repro.net import (
    ConstantLatency,
    DEFAULT_HEADER_BYTES,
    Message,
    Network,
    SizeModel,
)
from repro.sim import Environment, RngRegistry


class TestSizeModel:
    def setup_method(self):
        self.model = SizeModel()

    def test_scalars(self):
        assert self.model.payload_size(None) == 1
        assert self.model.payload_size(True) == 1
        assert self.model.payload_size(42) == 8
        assert self.model.payload_size(3.14) == 8

    def test_strings_and_bytes(self):
        assert self.model.payload_size("") == 2
        assert self.model.payload_size("abc") == 5
        assert self.model.payload_size("é") == 4  # 2-byte UTF-8
        assert self.model.payload_size(b"abc") == 5

    def test_containers_recursive(self):
        assert self.model.payload_size([]) == 2
        assert self.model.payload_size([1, 2]) == 2 + 16
        assert self.model.payload_size({"a": 1}) == 2 + 3 + 8
        nested = {"items": [1, 2, 3]}
        assert self.model.payload_size(nested) == 2 + (2 + 5) + (2 + 24)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            self.model.payload_size(object())

    def test_message_size_includes_header(self):
        msg = Message("a", "b", "k", payload=7)
        assert self.model.message_size(msg) == DEFAULT_HEADER_BYTES + 8

    def test_custom_header(self):
        model = SizeModel(header_bytes=100)
        assert model.message_size(Message("a", "b", "k")) == 101
        with pytest.raises(ValueError):
            SizeModel(header_bytes=-1)

    def test_deterministic(self):
        payload = {"item": "item0", "amount": 12.0, "requester_av": 3.0}
        sizes = {self.model.payload_size(payload) for _ in range(5)}
        assert len(sizes) == 1


class TestByteAccounting:
    def make_net(self, size_model):
        env = Environment()
        net = Network(
            env,
            latency=ConstantLatency(1.0),
            rng=RngRegistry(0).stream("net.latency"),
            size_model=size_model,
        )
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on("echo", lambda m: m.payload)
        return env, net, a

    def test_bytes_counted_with_model(self):
        env, net, a = self.make_net(SizeModel())
        a.send("b", "echo", {"x": 1}, tag="t")
        env.run()
        expected = DEFAULT_HEADER_BYTES + 2 + 3 + 8
        assert net.stats.bytes_total == expected
        assert net.stats.bytes_by_tag["t"] == expected

    def test_bytes_zero_without_model(self):
        env, net, a = self.make_net(None)
        a.send("b", "echo", {"x": 1})
        env.run()
        assert net.stats.bytes_total == 0

    def test_request_reply_both_counted(self):
        env, net, a = self.make_net(SizeModel())

        def client(env):
            return (yield a.request("b", "echo", 5))

        env.process(client(env))
        env.run()
        # request: header+8; reply: header+8
        assert net.stats.bytes_total == 2 * (DEFAULT_HEADER_BYTES + 8)

    def test_snapshot_diff_carries_bytes(self):
        env, net, a = self.make_net(SizeModel())
        a.send("b", "echo", 1)
        snap = net.stats.snapshot()
        a.send("b", "echo", 2)
        env.run()
        delta = net.stats.diff(snap)
        assert delta.bytes_total == DEFAULT_HEADER_BYTES + 8
        net.stats.reset()
        assert net.stats.bytes_total == 0
