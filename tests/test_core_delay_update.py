"""Behavioural tests for the Delay Update protocol on a real 3-site system."""

import pytest

from repro.cluster import DistributedSystem, SystemConfig, build_paper_system
from repro.core import UpdateKind, UpdateOutcome


def run_one(system, site, item, delta):
    proc = system.update(site, item, delta)
    system.run()
    assert proc.ok
    return proc.value


@pytest.fixture
def system():
    # 1 item, stock 90 -> AV 30 per site.
    return build_paper_system(n_items=1, initial_stock=90.0, seed=0)


ITEM = "item0"


class TestLocalPath:
    def test_decrement_within_av_is_local_and_silent(self, system):
        result = run_one(system, "site1", ITEM, -30)
        assert result.committed and result.local_only
        assert result.kind is UpdateKind.DELAY
        assert system.stats.sent_total == 0
        assert system.site("site1").av_table.get(ITEM) == 0.0
        assert system.site("site1").value(ITEM) == 60.0

    def test_increment_mints_av_locally(self, system):
        result = run_one(system, "site0", ITEM, +25)
        assert result.committed and result.local_only
        assert system.stats.sent_total == 0
        assert system.site("site0").av_table.get(ITEM) == 55.0
        assert system.collector.ledger.true_value(ITEM) == 115.0

    def test_zero_delta_is_local_noop_commit(self, system):
        result = run_one(system, "site1", ITEM, 0)
        assert result.committed and result.local_only
        assert system.site("site1").av_table.get(ITEM) == 30.0

    def test_replicas_diverge_without_propagation(self, system):
        run_one(system, "site1", ITEM, -10)
        assert system.site("site1").value(ITEM) == 80.0
        assert system.site("site0").value(ITEM) == 90.0  # not yet told


class TestTransferPath:
    def test_insufficient_av_triggers_one_transfer(self, system):
        result = run_one(system, "site1", ITEM, -45)
        assert result.committed and not result.local_only
        assert result.av_requests == 1
        # Believed-richest is a tie broken by name -> asks site0, which
        # grants ceil(30/2) = 15, just covering the shortage.
        assert result.av_obtained == 15.0
        assert system.stats.sent_total == 2  # request + grant
        assert system.av_total(ITEM) == 90.0 - 45.0

    def test_leftover_grant_stays_at_requester(self, system):
        # need 31, holds 30 -> shortage 1; grantor still gives half (15).
        result = run_one(system, "site1", ITEM, -31)
        assert result.committed
        assert system.site("site1").av_table.get(ITEM) == 14.0  # 45 - 31
        assert system.site("site0").av_table.get(ITEM) == 15.0

    def test_multiple_requests_until_covered(self, system):
        # need 75 > 30 local + 15 from first grant -> keeps asking.
        result = run_one(system, "site1", ITEM, -75)
        assert result.committed
        assert result.av_requests >= 2
        assert system.av_total(ITEM) == 15.0

    def test_reject_when_system_dry(self, system):
        result = run_one(system, "site1", ITEM, -91)  # > total stock 90
        assert result.outcome is UpdateOutcome.REJECTED
        # All accumulated AV returned: nothing lost.
        assert system.av_total(ITEM) == 90.0
        # The failed attempt cost messages (it had to discover dryness).
        assert system.stats.sent_total > 0
        # Value unchanged everywhere.
        assert all(s.value(ITEM) == 90.0 for s in system.sites.values())

    def test_rejected_update_recorded(self, system):
        run_one(system, "site1", ITEM, -91)
        assert system.collector.rejected == 1
        assert system.collector.ledger.true_value(ITEM) == 90.0

    def test_exact_total_av_commits(self, system):
        result = run_one(system, "site1", ITEM, -90)
        assert result.committed
        assert system.av_total(ITEM) == 0.0
        assert system.collector.ledger.true_value(ITEM) == 0.0

    def test_beliefs_updated_from_grant_reply(self, system):
        run_one(system, "site1", ITEM, -45)
        accel = system.site("site1").accelerator
        # site0 granted 15 of 30; the reply piggybacked its remainder.
        assert accel.beliefs.believed_volume("site0", ITEM) == 15.0

    def test_grantor_learned_requester_is_broke(self, system):
        run_one(system, "site1", ITEM, -45)
        accel0 = system.site("site0").accelerator
        believed = accel0.beliefs.believed_volume("site1", ITEM)
        assert believed == 30.0  # the hold amount piggybacked on the ask


class TestPropagation:
    def test_propagation_converges_replicas(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, propagate=True
        )
        run_one(system, "site1", ITEM, -10)
        run_one(system, "site0", ITEM, +5)
        system.run()  # drain propagation
        for site in system.sites.values():
            assert site.value(ITEM) == 85.0
        system.check_invariants(quiescent=True)

    def test_propagation_tagged_separately(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, propagate=True
        )
        run_one(system, "site1", ITEM, -10)
        system.run()
        assert system.stats.by_tag["prop"] == 2  # one push per peer
        assert system.stats.by_tag.get("av", 0) == 0


class TestStaticEscrow:
    def test_no_transfers_reject_instead(self):
        system = DistributedSystem.build(
            SystemConfig(n_items=1, initial_stock=90.0, allow_transfers=False)
        )
        result = run_one(system, "site1", ITEM, -45)
        assert result.outcome is UpdateOutcome.REJECTED
        assert system.stats.sent_total == 0
        assert system.av_total(ITEM) == 90.0
