"""Tests for the periodic batched sync scheduler."""

import pytest

from repro.cluster import build_paper_system
from repro.core import SyncScheduler


@pytest.fixture
def system():
    return build_paper_system(n_items=2, initial_stock=90.0, seed=0)


ITEM = "item0"


def test_validation(system):
    accel = system.site("site1").accelerator
    with pytest.raises(ValueError):
        SyncScheduler(accel, interval=0)


def test_rejects_eager_mode():
    system = build_paper_system(n_items=1, initial_stock=90.0, propagate=True)
    with pytest.raises(ValueError, match="eager"):
        SyncScheduler(system.site("site1").accelerator)


def test_periodic_sync_converges_replicas(system):
    scheduler = SyncScheduler(system.site("site1").accelerator, interval=10.0)
    scheduler.start()

    def driver(env):
        for _ in range(4):
            result = yield system.update("site1", ITEM, -5)
            assert result.committed
            yield env.timeout(12.0)

    proc = system.env.process(driver(system.env))
    system.run(until=100.0)
    assert proc.triggered
    assert scheduler.passes >= 5
    # All site1 deltas have reached the peers.
    assert system.site("site0").value(ITEM) == 70.0
    assert system.site("site2").value(ITEM) == 70.0


def test_batching_cheaper_than_eager(system):
    """4 updates in one interval -> one push per peer, not four."""
    scheduler = SyncScheduler(system.site("site1").accelerator, interval=50.0)
    scheduler.start()

    def driver(env):
        for _ in range(4):
            yield system.update("site1", ITEM, -5)

    system.env.process(driver(system.env))
    system.run(until=120.0)
    # first pass at t=50 sends 2 messages; second pass nothing new
    assert scheduler.messages_sent == 2


def test_stop_halts_loop(system):
    scheduler = SyncScheduler(system.site("site1").accelerator, interval=10.0)
    proc = scheduler.start()
    system.run(until=25.0)
    scheduler.stop()
    system.run()  # drains: the loop must exit rather than spin forever
    assert proc.triggered
    passes = scheduler.passes
    assert passes >= 2
    # Idempotent stop on a dead process is a no-op.
    scheduler.stop()


def test_crashed_site_pauses_sync(system):
    accel = system.site("site1").accelerator
    scheduler = SyncScheduler(accel, interval=10.0)
    scheduler.start()

    def driver(env):
        yield system.update("site1", ITEM, -5)
        system.network.faults.crash("site1")

    system.env.process(driver(system.env))
    system.run(until=55.0)
    assert scheduler.messages_sent == 0
    assert accel.owed_to("site0", ITEM) == -5.0  # pending for after recovery


def test_start_idempotent(system):
    scheduler = SyncScheduler(system.site("site1").accelerator)
    assert scheduler.start() is scheduler.start()


def test_repr(system):
    scheduler = SyncScheduler(system.site("site1").accelerator, interval=7.0)
    assert "interval=7" in repr(scheduler)
