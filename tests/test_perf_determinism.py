"""Determinism and fault-tolerance tests for the sharded sweep runner.

The contract under test: a sweep's merged output is a pure function of
``(grid, root_seed)`` — byte-identical across shard counts, scheduling
orders, and worker crashes. ``canonical()`` (sorted-keys JSON of the
ordered results) is the comparison surface, so "equal" here really is
*byte*-equal, repr-exact floats included.
"""

import pytest

from repro.perf import (
    ShardCrash,
    SweepError,
    build_grid,
    derive_seed,
    partition_tasks,
    run_sweep,
)
from repro.perf.runner import _POOLS, _get_pool, _start_method, shutdown_pools

ROOT_SEEDS = (0, 7, 20260806)


def _sweep(grid, root_seed, shards, **kwargs):
    tasks = build_grid(grid, root_seed=root_seed)
    return run_sweep(
        tasks, shards=shards, grid=grid, root_seed=root_seed, **kwargs
    )


# --------------------------------------------------------------------- #
# sharded == sequential, byte for byte
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("grid", ["fig6-small", "table1-small"])
@pytest.mark.parametrize("root_seed", ROOT_SEEDS)
def test_sharded_byte_identical_to_sequential(grid, root_seed):
    sequential = _sweep(grid, root_seed, shards=1)
    sharded = _sweep(grid, root_seed, shards=2)
    assert sequential.canonical() == sharded.canonical()
    assert sequential.digest() == sharded.digest()
    # The fingerprints carry real payload, not vacuous equality.
    assert sequential.events_processed > 0
    assert all(r["update_tags"] for r in sequential.results)


def test_shard_count_never_changes_output():
    """1..4 shards on a 3-task grid covers shards < tasks, == and >."""
    digests = {
        _sweep("fig6-small", 3, shards=n).digest() for n in (1, 2, 3, 4)
    }
    assert len(digests) == 1


def test_chaos_grid_sharded_matches_sequential():
    sequential = _sweep("chaos-small", 0, shards=1)
    sharded = _sweep("chaos-small", 0, shards=3)
    assert sequential.canonical() == sharded.canonical()
    assert all(r["ok"] for r in sequential.results)


@pytest.mark.parametrize("grid", ["fig6-small", "chaos-small"])
def test_merged_telemetry_shard_count_invariant(grid):
    """The sweep-level telemetry report is part of the determinism
    surface: folding shard snapshots in task-index order must yield a
    byte-identical merge for any shard count."""
    from repro.perf.tasks import canonical_json

    encodings = {
        canonical_json(_sweep(grid, 0, shards=n).telemetry())
        for n in (1, 2, 4)
    }
    assert len(encodings) == 1


def test_merged_telemetry_carries_real_payload():
    sweep = _sweep("fig6-small", 0, shards=2)
    telemetry = sweep.telemetry()
    assert telemetry["tasks"] == len(sweep.results)
    assert telemetry["events_processed"] == sweep.events_processed > 0
    assert telemetry["metrics"]
    assert telemetry["sites"]


def test_different_root_seeds_differ():
    """The root seed genuinely reaches the workloads."""
    assert (
        _sweep("fig6-small", 0, shards=1).digest()
        != _sweep("fig6-small", 1, shards=1).digest()
    )


# --------------------------------------------------------------------- #
# worker crashes
# --------------------------------------------------------------------- #


def test_worker_crash_retries_and_output_unchanged():
    """Kill a shard mid-sweep: the retry wave recomputes the lost tasks
    and the merged output is still byte-identical."""
    reference = _sweep("fig6-small", 1, shards=1)
    crashed = _sweep(
        "fig6-small", 1, shards=2,
        crash=ShardCrash(shard=0, after=1),  # dies with work undelivered
    )
    assert crashed.retries >= 1  # the crash demonstrably fired
    assert crashed.canonical() == reference.canonical()


def test_worker_crash_before_any_result():
    """A shard that dies instantly loses *all* its tasks — still fine."""
    reference = _sweep("table1-small", 2, shards=1)
    crashed = _sweep(
        "table1-small", 2, shards=2, crash=ShardCrash(shard=1, after=0)
    )
    assert crashed.retries >= 1
    assert crashed.canonical() == reference.canonical()


def test_sweep_error_when_tasks_never_finish():
    """With retries exhausted the runner fails loudly, not silently."""
    tasks = build_grid("fig6-small", root_seed=0)
    with pytest.raises(SweepError):
        run_sweep(
            tasks, shards=2, max_attempts=1,
            crash=ShardCrash(shard=0, after=0),
        )


def test_sanitizer_clean_under_sharded_optimized_kernel():
    """check=True replays tasks under the protocol sanitizer inside the
    workers: the optimized kernel must produce zero violations."""
    tasks = build_grid("fig6-small", root_seed=0, replicates=2, check=True)
    sweep = run_sweep(tasks, shards=2, grid="fig6-small", root_seed=0)
    assert len(sweep.results) == 2
    for result in sweep.results:
        assert result["sanitizer"]["violations"] == 0


# --------------------------------------------------------------------- #
# pool lifecycle
# --------------------------------------------------------------------- #


@pytest.fixture
def fresh_pools():
    """Isolate each lifecycle test: no pool before, none left after."""
    shutdown_pools()
    yield
    shutdown_pools()


def test_pool_persists_across_sweeps(fresh_pools):
    """Two sweeps in one process reuse the same worker pool — the whole
    point of the persistent pool is paying process startup once per
    campaign, not once per sweep."""
    first = _sweep("fig6-small", 0, shards=2, mode="pool")
    pool = _get_pool(_start_method(None), 2)
    waves_after_first = pool.waves
    assert waves_after_first >= 1
    second = _sweep("fig6-small", 0, shards=2, mode="pool")
    assert _get_pool(_start_method(None), 2) is pool
    assert pool.waves > waves_after_first
    assert pool.respawns == 0  # healthy campaign: nobody was replaced
    assert first.canonical() == second.canonical()
    # The same workers served both sweeps.
    assert len(pool.workers) == 2
    assert all(proc.is_alive() for proc, _ in pool.workers.values())


def test_pool_replaces_dead_workers_in_slot(fresh_pools):
    """A worker killed mid-campaign is respawned in its slot and the
    pool keeps serving — with byte-identical output."""
    reference = _sweep("fig6-small", 1, shards=1)
    crashed = _sweep(
        "fig6-small", 1, shards=2, mode="pool",
        crash=ShardCrash(shard=0, after=1),
    )
    pool = _get_pool(_start_method(None), 2)
    assert pool.respawns >= 1
    assert crashed.canonical() == reference.canonical()
    # The healed pool serves the next sweep without a teardown.
    again = _sweep("fig6-small", 1, shards=2, mode="pool")
    assert again.canonical() == reference.canonical()
    assert all(proc.is_alive() for proc, _ in pool.workers.values())


@pytest.mark.parametrize("fuse", [True, False])
def test_pool_fused_and_unfused_byte_identical(fresh_pools, fuse):
    """Task fusion is an IPC batching choice, not a semantic one."""
    reference = _sweep("table1-small", 0, shards=1)
    pooled = _sweep("table1-small", 0, shards=2, mode="pool", fuse=fuse)
    assert pooled.mode == "pool"
    assert pooled.canonical() == reference.canonical()


def test_inline_mode_byte_identical_to_sequential():
    """Single-core degradation (fused chunks, deferred gc) must not be
    observable in the output."""
    reference = _sweep("chaos-small", 0, shards=1)
    inline = _sweep("chaos-small", 0, shards=4, mode="inline")
    assert inline.mode == "inline"
    assert inline.canonical() == reference.canonical()


def test_shutdown_pools_tears_everything_down(fresh_pools):
    _sweep("fig6-small", 0, shards=2, mode="pool")
    pool = _get_pool(_start_method(None), 2)
    procs = [proc for proc, _ in pool.workers.values()]
    assert procs and all(p.is_alive() for p in procs)
    shutdown_pools()
    assert not _POOLS
    assert all(not p.is_alive() for p in procs)


def test_mode_rejects_unknown_value():
    tasks = build_grid("fig6-small", root_seed=0)
    with pytest.raises(ValueError):
        run_sweep(tasks, shards=2, mode="threads")


# --------------------------------------------------------------------- #
# partitioning & seed derivation
# --------------------------------------------------------------------- #


def test_partition_round_robin_covers_everything_once():
    tasks = build_grid("fig6-small", root_seed=0, replicates=7)
    chunks = partition_tasks(tasks, 3)
    assert [t.index for t in chunks[0]] == [0, 3, 6]
    assert [t.index for t in chunks[1]] == [1, 4]
    assert [t.index for t in chunks[2]] == [2, 5]
    flat = sorted(t.index for chunk in chunks for t in chunk)
    assert flat == list(range(7))


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        partition_tasks([], 0)


def test_derive_seed_stable_and_decorrelated():
    assert derive_seed(0, "fig6", 0) == derive_seed(0, "fig6", 0)
    seeds = {derive_seed(0, "fig6", i) for i in range(16)}
    assert len(seeds) == 16
    assert derive_seed(0, "fig6", 0) != derive_seed(0, "table1", 0)
    assert derive_seed(0, "fig6", 0) != derive_seed(1, "fig6", 0)


def test_grid_replicate_seeds_independent_of_replicate_count():
    """Growing a grid never perturbs its existing cells."""
    small = build_grid("fig6-small", root_seed=5, replicates=2)
    large = build_grid("fig6-small", root_seed=5, replicates=6)
    assert [t.seed for t in large[:2]] == [t.seed for t in small]


def test_canonical_excludes_runner_diagnostics():
    """shards/retries describe *how* the sweep ran; they must not leak
    into the determinism surface."""
    sweep = _sweep("fig6-small", 0, shards=1)
    sweep.shards, sweep.retries = 99, 42
    assert sweep.canonical() == _sweep("fig6-small", 0, shards=1).canonical()
