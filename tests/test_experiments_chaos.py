"""Chaos harness: fault schedules must end in convergence + clean audit."""

import pytest

from repro.cluster import paper_config
from repro.experiments.chaos import (
    FULL_SCENARIOS,
    LOSS_RULES,
    SMALL_SCENARIOS,
    run_chaos,
    run_chaos_scenario,
)


class TestScenarios:
    def test_small_suite_covers_required_schedules(self):
        names = [s.name for s in SMALL_SCENARIOS]
        assert names == [
            "maker-crash", "retailer-crash", "partition-loss", "overload",
        ]
        assert set(names) < {s.name for s in FULL_SCENARIOS}

    def test_schedules_build_for_paper_config(self):
        config = paper_config()
        for scenario in FULL_SCENARIOS:
            schedule = scenario.build(config)
            if scenario.name == "overload":
                # Workload is the adversary: the network stays healthy.
                assert len(schedule) == 0
                continue
            assert len(schedule) > 0
            assert schedule.last_time > 0


class TestChaosRuns:
    def test_maker_crash_converges(self):
        result = run_chaos_scenario(SMALL_SCENARIOS[0], n_updates=45)
        assert result.ok
        assert result.converged
        assert result.report.ok
        assert not result.loss_warnings
        assert "PASS" in result.render()

    def test_partition_loss_exercises_robustness_layer(self):
        result = run_chaos_scenario(SMALL_SCENARIOS[2], n_updates=45)
        assert result.ok
        counters = result.report.counters
        # 5% loss must actually bite — and be absorbed, not warned about.
        assert counters["rel_covered_drops"] > 0
        assert (
            counters["leases_opened"]
            == counters["leases_discharged"] + counters["leases_reverted"]
        )
        for rule in LOSS_RULES:
            assert not result.report.by_rule(rule)

    def test_overload_surge_sheds_degrades_and_recovers(self):
        result = run_chaos_scenario(SMALL_SCENARIOS[3], n_updates=45)
        assert result.ok
        assert not result.extra_failures
        counters = result.report.counters
        # The surge must actually bite: requests shed with retry hints,
        # items demoted to the delay path — and every demotion reversed.
        assert counters["overload_sheds"] > 0
        assert counters["overload_demotions"] > 0
        assert counters["overload_demotions"] == counters["overload_promotions"]
        assert counters["overload_transitions"] > 0

    def test_small_report_aggregates(self):
        report = run_chaos(small=True, n_updates=45)
        assert report.ok
        assert len(report.results) == 4
        assert "4/4" in report.render()

    def test_cli_smoke(self):
        from repro.cli import main

        assert main(["chaos", "--small", "--updates", "30"]) == 0
