"""Unit tests for event primitives: succeed/fail, composites, values."""

import pytest

from repro.sim import (
    AllOf,
    AlreadyTriggered,
    AnyOf,
    ConditionValue,
    Environment,
    Event,
)


def test_pending_event_has_no_outcome():
    ev = Event(Environment())
    assert not ev.triggered
    with pytest.raises(AttributeError):
        ev.value
    with pytest.raises(AttributeError):
        ev.ok


def test_succeed_carries_value():
    env = Environment()
    ev = env.event().succeed(42)
    assert ev.triggered and ev.ok and ev.value == 42


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event().succeed()
    with pytest.raises(AlreadyTriggered):
        ev.succeed()
    with pytest.raises(AlreadyTriggered):
        ev.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(3, "c"), env.timeout(2, "b")
        result = yield env.all_of([t1, t2, t3])
        return (env.now, [result[e] for e in (t1, t2, t3)])

    p = env.process(proc(env))
    env.run()
    assert p.value == (3, ["a", "c", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        slow, fast = env.timeout(10, "slow"), env.timeout(1, "fast")
        result = yield env.any_of([slow, fast])
        return (env.now, fast in result, slow in result)

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (1, True, False)


def test_all_of_empty_fires_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered
    assert cond.value == ConditionValue([])


def test_any_of_empty_fires_immediately():
    env = Environment()
    assert AnyOf(env, []).triggered


def test_condition_fails_if_child_fails():
    env = Environment()

    def proc(env):
        bad = env.event()
        bad.fail(ValueError("child failed"))
        try:
            yield env.all_of([bad, env.timeout(5)])
        except ValueError as exc:
            return str(exc)

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == "child failed"


def test_condition_rejects_foreign_environment():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.timeout(1)])


def test_condition_value_mapping_protocol():
    env = Environment()
    a, b = env.event().succeed(1), env.event().succeed(2)
    cv = ConditionValue([a, b])
    assert cv[a] == 1 and cv[b] == 2
    assert list(cv.keys()) == [a, b]
    assert list(cv.values()) == [1, 2]
    assert dict(cv.items()) == {a: 1, b: 2}
    assert cv == {a: 1, b: 2}
    assert cv.todict() == {a: 1, b: 2}
    other = env.event().succeed(3)
    with pytest.raises(KeyError):
        cv[other]


def test_all_of_with_already_processed_events():
    env = Environment()
    done = env.event().succeed("x")
    env.run()  # process `done`
    cond = env.all_of([done])
    env.run()
    assert cond.triggered and cond.value[done] == "x"
