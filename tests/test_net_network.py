"""Integration tests for Network + Endpoint: RPC, FIFO, faults, timeouts."""

import numpy as np
import pytest

from repro.net import (
    ConstantLatency,
    CrashedEndpointError,
    EndpointNotFound,
    Message,
    Network,
    RequestTimeout,
    UniformLatency,
)
from repro.sim import Environment, Tracer


def make_net(latency=None, **kw):
    env = Environment()
    kw.setdefault("rng", np.random.default_rng(0))
    net = Network(env, latency=latency or ConstantLatency(1.0), **kw)
    return env, net


def test_one_way_send_delivers_after_latency():
    env, net = make_net(ConstantLatency(2.0))
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on("ping", lambda msg: got.append((env.now, msg.payload)))
    a.send("b", "ping", {"x": 1})
    env.run()
    assert got == [(2.0, {"x": 1})]


def test_request_reply_round_trip():
    env, net = make_net(ConstantLatency(1.0))
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("double", lambda msg: msg.payload * 2)

    def client(env):
        value = yield a.request("b", "double", 21)
        return (env.now, value)

    p = env.process(client(env))
    env.run()
    assert p.value == (2.0, 42)  # 1 unit each way
    assert net.stats.sent_total == 2
    assert net.stats.correspondences_total == 1.0


def test_generator_handler_replies_with_return_value():
    env, net = make_net(ConstantLatency(1.0))
    a, b = net.endpoint("a"), net.endpoint("b")

    def slow_handler(msg):
        yield env.timeout(5)
        return msg.payload + 1

    b.on("incr", slow_handler)

    def client(env):
        value = yield a.request("b", "incr", 10)
        return (env.now, value)

    p = env.process(client(env))
    env.run()
    assert p.value == (7.0, 11)  # 1 + 5 + 1


def test_unknown_destination_raises():
    env, net = make_net()
    a = net.endpoint("a")
    with pytest.raises(EndpointNotFound):
        a.send("ghost", "ping")


def test_missing_handler_raises():
    env, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    a.send("b", "nothing")
    with pytest.raises(LookupError, match="no handler"):
        env.run()


def test_duplicate_handler_rejected():
    env, net = make_net()
    a = net.endpoint("a")
    a.on("k", lambda m: None)
    with pytest.raises(ValueError):
        a.on("k", lambda m: None)


def test_duplicate_endpoint_name_rejected():
    env, net = make_net()
    net.endpoint("a")
    with pytest.raises(ValueError):
        net.endpoint("a")


def test_fifo_ordering_with_random_latency():
    env, net = make_net(UniformLatency(0.1, 5.0), rng=np.random.default_rng(3))
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on("seq", lambda msg: got.append(msg.payload))
    for i in range(50):
        a.send("b", "seq", i)
    env.run()
    assert got == list(range(50))


def test_non_fifo_can_reorder():
    env = Environment()
    net = Network(
        env,
        latency=UniformLatency(0.1, 5.0),
        rng=np.random.default_rng(3),
        fifo=False,
    )
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on("seq", lambda msg: got.append(msg.payload))
    for i in range(50):
        a.send("b", "seq", i)
    env.run()
    assert sorted(got) == list(range(50))
    assert got != list(range(50))


def test_crashed_destination_drops_message():
    env, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: pytest.fail("crashed endpoint must not handle"))
    net.faults.crash("b")
    a.send("b", "ping")
    env.run()
    assert net.stats.sent_total == 1
    assert net.stats.dropped_total == 1


def test_crash_while_in_flight_drops():
    env, net = make_net(ConstantLatency(5.0))
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: pytest.fail("must not deliver"))
    a.send("b", "ping")

    def crasher(env):
        yield env.timeout(1)
        net.faults.crash("b")

    env.process(crasher(env))
    env.run()
    assert net.stats.dropped_total == 1


def test_crashed_sender_cannot_send():
    env, net = make_net()
    a, _ = net.endpoint("a"), net.endpoint("b")
    net.faults.crash("a")
    with pytest.raises(CrashedEndpointError):
        a.send("b", "ping")
    with pytest.raises(CrashedEndpointError):
        a.request("b", "ping")


def test_request_timeout_fires_on_crash():
    env, net = make_net(ConstantLatency(1.0))
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: "pong")
    net.faults.crash("b")

    def client(env):
        try:
            yield a.request("b", "ping", timeout=10)
        except RequestTimeout:
            return ("timed-out", env.now)

    p = env.process(client(env))
    env.run()
    assert p.value == ("timed-out", 10)


def test_request_timeout_not_fired_when_reply_arrives():
    env, net = make_net(ConstantLatency(1.0))
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: "pong")

    def client(env):
        value = yield a.request("b", "ping", timeout=10)
        return value

    p = env.process(client(env))
    env.run()
    assert p.value == "pong"
    assert env.now == 10  # timeout event still fires harmlessly


def test_partition_blocks_cross_group_traffic():
    env, net = make_net()
    a, b, c = net.endpoint("a"), net.endpoint("b"), net.endpoint("c")
    got = []
    b.on("ping", lambda m: got.append("b"))
    c.on("ping", lambda m: got.append("c"))
    net.faults.partition([["a", "b"], ["c"]])
    a.send("b", "ping")
    a.send("c", "ping")
    env.run()
    assert got == ["b"]
    net.faults.heal()
    a.send("c", "ping")
    env.run()
    assert got == ["b", "c"]


def test_probabilistic_drop():
    env = Environment()
    net = Network(env, latency=ConstantLatency(1.0), rng=np.random.default_rng(0))
    net.faults.drop_probability = 0.5
    net.faults._rng = np.random.default_rng(0)
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on("ping", lambda m: got.append(1))
    for _ in range(200):
        a.send("b", "ping")
    env.run()
    assert 60 < len(got) < 140
    assert net.stats.dropped_total == 200 - len(got)


def test_peers_excludes_self():
    env, net = make_net()
    a, b, c = net.endpoint("a"), net.endpoint("b"), net.endpoint("c")
    assert a.peers() == ["b", "c"]


def test_tracer_records_send_and_recv():
    env = Environment()
    tracer = Tracer()
    net = Network(
        env,
        latency=ConstantLatency(1.0),
        rng=np.random.default_rng(0),
        tracer=tracer,
    )
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: None)
    a.send("b", "ping")
    env.run()
    kinds = [r.kind for r in tracer]
    assert kinds == ["msg.send", "msg.recv"]


def test_handler_decorator():
    env, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")

    @b.handler("ping")
    def _(msg):
        return "pong"

    def client(env):
        return (yield a.request("b", "ping"))

    p = env.process(client(env))
    env.run()
    assert p.value == "pong"


def test_handled_counter():
    env, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: None)
    a.send("b", "ping")
    a.send("b", "ping")
    env.run()
    assert b.handled["ping"] == 2
