"""Shrinker: ddmin mechanics plus the planted-bug acceptance loop."""

import json

import pytest

from repro.testkit import make_case, run_case, run_fuzz, shrink_case
from repro.testkit.fuzzer import replay_artifact
from repro.testkit.shrink import _ddmin


# ---------------------------------------------------------------------- #
# ddmin mechanics
# ---------------------------------------------------------------------- #

def test_ddmin_finds_minimal_pair():
    # Failure requires both 3 and 7; everything else is noise.
    def failing(candidate):
        return 3 in candidate and 7 in candidate

    result = _ddmin(list(range(10)), lambda items: items, failing)
    assert sorted(result) == [3, 7]


def test_ddmin_empty_when_failure_is_unconditional():
    assert _ddmin([1, 2, 3], lambda items: items, lambda _c: True) == []


def test_ddmin_keeps_everything_when_all_needed():
    def failing(candidate):
        return len(candidate) == 4

    assert _ddmin([1, 2, 3, 4], lambda items: items, failing) == [1, 2, 3, 4]


def test_shrink_rejects_passing_case():
    with pytest.raises(ValueError, match="passing"):
        shrink_case(make_case(0, 1))


# ---------------------------------------------------------------------- #
# the acceptance loop: plant, find, shrink, replay
# ---------------------------------------------------------------------- #

def test_planted_double_grant_shrinks_to_minimal_repro(tmp_path):
    report = run_fuzz(
        root_seed=0,
        max_cases=16,
        n_ops=36,
        inject="av-double-grant",
        artifact_dir=str(tmp_path),
    )
    assert not report.ok
    assert report.shrink is not None

    # ISSUE 5 acceptance: the known-bad schedule must shrink to a
    # minimal repro of at most 5 ops and 2 fault steps.
    shrunk = report.shrink.case
    assert len(shrunk.ops) <= 5
    assert len(shrunk.faults) <= 2
    assert shrunk.inject == "av-double-grant"

    # The minimal case still exhibits exactly the original bug class.
    outcome = run_case(shrunk)
    assert outcome.rules == report.shrink.rules
    assert "av.conservation" in outcome.rules

    # ... and the written artifact replayed byte-identically.
    assert report.artifact_path is not None
    assert report.replay_ok is True


def test_artifact_replays_byte_identically(tmp_path):
    report = run_fuzz(
        root_seed=0,
        max_cases=16,
        inject="av-double-grant",
        artifact_dir=str(tmp_path),
    )
    with open(report.artifact_path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    assert artifact["format"] == "repro-fuzz-repro/1"
    assert artifact["shrink"]["ops"][1] <= artifact["shrink"]["ops"][0]

    reproduced, text = replay_artifact(report.artifact_path)
    assert reproduced
    assert "REPRODUCED" in text

    # Tampering with the recorded digest must be detected.
    artifact["digest"] = "0" * 64
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(artifact))
    reproduced, text = replay_artifact(str(tampered))
    assert not reproduced
    assert "MISMATCH" in text


def test_shrink_survives_orphaned_fault_steps():
    """ddmin may keep a recover/heal whose crash/partition was dropped."""
    case = make_case(0, 0, inject="av-double-grant")
    orphaned = case.with_(faults=((60.0, "recover", ("site1",)),
                                  (80.0, "heal", ())))
    outcome = run_case(orphaned)
    assert "av.conservation" in outcome.rules  # still reproduces


def test_shrink_is_deterministic():
    case = make_case(0, 0, inject="av-double-grant")
    first = shrink_case(case)
    second = shrink_case(case)
    assert first.case == second.case
    assert first.runs == second.runs
