"""Property tests for reconciled reads and dynamic reclassification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_paper_system
from repro.core import UpdateKind
from repro.core.reads import ReadConsistency

SITES = ["site0", "site1", "site2"]
ITEMS = ["item0", "item1"]

updates = st.lists(
    st.tuples(
        st.sampled_from(SITES),
        st.sampled_from(ITEMS),
        st.integers(min_value=-25, max_value=25),
    ),
    max_size=20,
)


@settings(max_examples=30, deadline=None)
@given(updates, st.sampled_from(SITES))
def test_reconciled_read_always_recovers_ground_truth(ops, reader):
    """Whatever lazy-mode divergence the workload created, a reconciled
    read from any site returns exactly the ledger value."""
    system = build_paper_system(n_items=2, initial_stock=80.0, seed=1)

    def driver(env):
        for site, item, delta in ops:
            yield system.update(site, item, float(delta))
        results = {}
        for item in ITEMS:
            r = yield system.sites[reader].accelerator.read(
                item, ReadConsistency.RECONCILED
            )
            results[item] = r.value
        return results

    proc = system.env.process(driver(system.env))
    system.run()
    assert proc.ok
    for item in ITEMS:
        assert proc.value[item] == system.collector.ledger.true_value(item)


# Interleave updates with reclassification flips; every step must keep
# the class globally agreed and the values consistent with the ledger.
actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.sampled_from(SITES),
            st.sampled_from(ITEMS),
            st.integers(min_value=-20, max_value=20),
        ),
        st.tuples(
            st.just("flip"),
            st.sampled_from(SITES),
            st.sampled_from(ITEMS),
            st.just(0),
        ),
    ),
    max_size=16,
)


@settings(max_examples=30, deadline=None)
@given(actions, st.booleans())
def test_reclassification_chaos(action_list, start_regular):
    system = build_paper_system(
        n_items=2,
        initial_stock=80.0,
        regular_fraction=1.0 if start_regular else 0.0,
        seed=2,
    )

    def driver(env):
        for kind, site, item, delta in action_list:
            accel = system.sites[site].accelerator
            if kind == "update":
                yield system.update(site, item, float(delta))
            else:
                if accel.av_table.defined(item):
                    yield accel.make_non_regular(item)
                else:
                    yield accel.make_regular(item)
        return True

    proc = system.env.process(driver(system.env))
    system.run()
    assert proc.ok, proc.value
    system.check_invariants()

    ledger = system.collector.ledger
    for item in ITEMS:
        # All sites agree on the item's class.
        classes = {
            s.av_table.defined(item) for s in system.sites.values()
        }
        assert len(classes) == 1
        regular = classes.pop()
        if not regular:
            # Non-regular: replicas identical and equal to ground truth.
            values = {s.store.value(item) for s in system.sites.values()}
            assert values == {ledger.true_value(item)}
        else:
            # Regular: conservation bound.
            assert system.av_total(item) <= ledger.true_value(item) + 1e-9
