"""Tests for the experiment harness (small sizes; benches run the real ones)."""

import pytest

from repro.experiments import (
    Checkpoint,
    checkpoint_schedule,
    make_paper_trace,
    run_counted,
    run_fault_experiment,
    run_fig6,
    run_latency_experiment,
    run_table1,
)
from repro.experiments.sweep import sweep_items, sweep_rows, SWEEP_HEADERS
from repro.cluster import DistributedSystem, paper_config
from repro.metrics.correspondence import is_monotonic


class TestCheckpointSchedule:
    def test_regular_schedule(self):
        assert checkpoint_schedule(100, 25) == [25, 50, 75, 100]

    def test_uneven_includes_final(self):
        assert checkpoint_schedule(105, 25) == [25, 50, 75, 100, 105]

    def test_validation(self):
        with pytest.raises(ValueError):
            checkpoint_schedule(0, 10)
        with pytest.raises(ValueError):
            checkpoint_schedule(10, 0)


class TestRunCounted:
    def test_checkpoints_sampled(self):
        trace = make_paper_trace(60, seed=0, n_items=5)
        system = DistributedSystem.build(paper_config(n_items=5, seed=0))
        run = run_counted(system, trace, "x", checkpoints=[20, 40, 60])
        assert [cp.updates for cp in run.checkpoints] == [20, 40, 60]
        assert len(run.results) == 60
        assert isinstance(run.final(), Checkpoint)

    def test_checkpoint_beyond_trace_rejected(self):
        trace = make_paper_trace(10, seed=0, n_items=5)
        system = DistributedSystem.build(paper_config(n_items=5, seed=0))
        with pytest.raises(ValueError):
            run_counted(system, trace, "x", checkpoints=[11])

    def test_series_conversion(self):
        trace = make_paper_trace(30, seed=0, n_items=5)
        system = DistributedSystem.build(paper_config(n_items=5, seed=0))
        run = run_counted(system, trace, "lbl", checkpoints=[15, 30])
        series = run.series()
        assert series.label == "lbl"
        assert len(series) == 2


class TestFig6:
    def test_structure_and_claims_small(self):
        result = run_fig6(n_updates=300, seed=0, n_items=10)
        assert result.reduction > 0.4
        assert result.local_ratio > 0.5
        assert is_monotonic(result.proposal_series)
        assert result.conventional_series.slope() == 1.0
        assert "Fig. 6" in result.render()

    def test_same_seed_reproduces(self):
        a = run_fig6(n_updates=200, seed=3, n_items=10)
        b = run_fig6(n_updates=200, seed=3, n_items=10)
        assert a.proposal_series.points == b.proposal_series.points
        assert a.conventional_series.points == b.conventional_series.points

    def test_different_seeds_differ(self):
        a = run_fig6(n_updates=200, seed=3, n_items=10)
        b = run_fig6(n_updates=200, seed=4, n_items=10)
        assert a.proposal_series.points != b.proposal_series.points


class TestTable1:
    def test_structure_and_claims_small(self):
        result = run_table1(n_updates=400, seed=0, n_items=10)
        report = result.assurance()
        assert report.retailer_fairness > 0.9
        final = result.proposal.final()
        assert set(final.per_site) == {"site0", "site1", "site2"}
        assert "Table 1" in result.render()

    def test_growth_below_conventional(self):
        result = run_table1(n_updates=400, seed=0, n_items=10)
        for retailer in result.retailers:
            assert result.per_site_growth(retailer) < 0.5


class TestMakePaperTrace:
    def test_balanced_defaults_for_more_retailers(self):
        trace = make_paper_trace(100, seed=0, n_items=5, n_retailers=4)
        maker_deltas = [e.delta for e in trace if e.site == "site0"]
        # increase cap defaults to 4 x 10% = 40% of initial (100) = 40
        assert max(maker_deltas) > 20

    def test_trace_is_deterministic(self):
        a = make_paper_trace(50, seed=1, n_items=5)
        b = make_paper_trace(50, seed=1, n_items=5)
        assert a == b


class TestFaultExperiment:
    def test_availability_ordering(self):
        result = run_fault_experiment(
            n_updates=240, fault_start=150.0, fault_end=500.0, seed=0
        )
        prop = result.retailer_availability_during_fault(
            "proposal", ["site1", "site2"]
        )
        conv = result.retailer_availability_during_fault(
            "centralized", ["site1", "site2"]
        )
        assert prop > conv
        assert conv == 0.0
        assert len(result.rows()) == 6


class TestLatencyExperiment:
    def test_proposal_faster(self):
        result = run_latency_experiment(n_updates=240, seed=0)
        assert result.summaries["proposal"].mean < result.summaries[
            "centralized"
        ].mean
        assert result.speedup() > 2.0


class TestSweep:
    def test_items_sweep_rows(self):
        points = sweep_items(item_counts=(5, 20), n_updates=200, seed=0)
        rows = sweep_rows(points)
        assert len(rows) == 2
        assert len(rows[0]) == len(SWEEP_HEADERS)
        assert points[1].reduction >= points[0].reduction - 0.1


class TestPartitionExperiment:
    def test_partition_better_than_crash_for_retailers(self):
        from repro.experiments import run_partition_experiment

        part = run_partition_experiment(
            n_updates=240, fault_start=150.0, fault_end=500.0, seed=0
        )
        crash = run_fault_experiment(
            n_updates=240, fault_start=150.0, fault_end=500.0, seed=0
        )
        retailers = ["site1", "site2"]
        part_avail = part.retailer_availability_during_fault(
            "proposal", retailers
        )
        crash_avail = crash.retailer_availability_during_fault(
            "proposal", retailers
        )
        # With the maker partitioned (not crashed) the retailers can
        # still trade AV with each other.
        assert part_avail >= crash_avail
        assert part.retailer_availability_during_fault(
            "centralized", retailers
        ) == 0.0
