"""Edge-case tests across modules: retry exhaustion, catch-up retries,
urgent scheduling, and misc small behaviours the main suites skip."""

import pytest

from repro.cluster import build_paper_system
from repro.core import UpdateKind, UpdateOutcome
from repro.core.types import UpdateRequest, UpdateResult
from repro.net import Message
from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT, Event


class TestUrgentScheduling:
    def test_urgent_beats_normal_at_same_time(self):
        env = Environment()
        order = []

        normal = Event(env)
        normal.callbacks.append(lambda e: order.append("normal"))
        normal._ok, normal._value = True, None
        env.schedule(normal, priority=NORMAL)

        urgent = Event(env)
        urgent.callbacks.append(lambda e: order.append("urgent"))
        urgent._ok, urgent._value = True, None
        env.schedule(urgent, priority=URGENT)

        env.run()
        assert order == ["urgent", "normal"]


class TestDeliverDecisionExhaustion:
    def test_gives_up_after_retry_budget(self):
        system = build_paper_system(
            n_items=1,
            initial_stock=50.0,
            regular_fraction=0.0,
            seed=0,
            request_timeout=2.0,
            max_immediate_retries=3,
        )
        imm = system.site("site1").accelerator.immediate
        system.network.faults.crash("site2")

        proc = system.env.process(
            imm._deliver_decision("site2", "imm.commit", "imm:1:site1")
        )
        system.run()
        assert proc.ok and proc.value is None
        assert imm.retries == 3


class TestCatchUp:
    def test_catch_up_with_no_reachable_source(self):
        system = build_paper_system(
            n_items=2,
            initial_stock=50.0,
            regular_fraction=0.0,
            seed=0,
            request_timeout=2.0,
        )
        system.network.faults.crash("site0")
        system.network.faults.crash("site1")
        imm = system.site("site2").accelerator.immediate
        proc = system.env.process(imm.catch_up())
        system.run()
        assert proc.value == 0  # stayed stale, did not hang or crash

    def test_catch_up_skips_regular_items(self):
        system = build_paper_system(
            n_items=2, initial_stock=50.0, regular_fraction=0.5, seed=0,
            request_timeout=2.0,
        )
        # Diverge the regular item at site2 via a local delay update at
        # site1 (unsynced), and the non-regular via direct immediate.
        p = system.update("site1", "item0", -5)
        system.run()
        imm = system.site("site2").accelerator.immediate
        proc = system.env.process(imm.catch_up())
        system.run()
        # Only the (already consistent) non-regular item was pulled;
        # the regular item's replica stays under lazy-sync control.
        assert proc.value == 1
        assert system.site("site2").value("item0") == 50.0


class TestReadUnderFaults:
    def test_reconciled_read_skips_crashed_peer(self):
        from repro.core.reads import ReadConsistency

        system = build_paper_system(
            n_items=1, initial_stock=90.0, seed=0, request_timeout=2.0
        )
        p = system.update("site2", "item0", -10)
        system.run()
        system.network.faults.crash("site2")
        proc = system.site("site1").accelerator.read(
            "item0", ReadConsistency.RECONCILED
        )
        system.run()
        # site2 (which owes us -10) is unreachable: the read degrades to
        # what the reachable peers know.
        assert proc.value.peers_asked == 1
        assert proc.value.value == 90.0


class TestRebalancerEdge:
    def test_no_known_beliefs_no_push(self):
        from repro.core import AVRebalancer
        from repro.core.beliefs import BeliefTable

        system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)
        accel = system.maker.accelerator
        accel.beliefs = BeliefTable(accel.site)  # wipe bootstrap beliefs
        accel.av_table.add("item0", 500.0)  # huge surplus
        system.collector.ledger.record_delta("item0", 500.0)  # keep books
        reb = AVRebalancer(accel, surplus_factor=1.1, needy_factor=0.9)
        assert reb.rebalance_once() == 0  # local info only: nothing known

    def test_frozen_item_skipped(self):
        from repro.core import AVRebalancer

        system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)
        accel = system.maker.accelerator
        accel.freeze("item0")
        reb = AVRebalancer(accel, surplus_factor=1.1, needy_factor=0.99)
        assert reb.rebalance_once() == 0
        accel.unfreeze("item0")


class TestStrs:
    def test_update_request_and_result_strs(self):
        req = UpdateRequest(site="site1", item="A", delta=-3.0)
        assert "A-3" in str(req)
        res = UpdateResult(
            request=req,
            kind=UpdateKind.DELAY,
            outcome=UpdateOutcome.COMMITTED,
            local_only=True,
            finished_at=2.0,
        )
        assert "local" in str(res) and "committed" in str(res)
        assert res.latency == 2.0

    def test_message_reply_str(self):
        req = Message("a", "b", "k", expects_reply=True)
        rep = Message("b", "a", "k.reply", reply_to=req.msg_id)
        assert f"reply_to={req.msg_id}" in str(rep)


class TestFrozenGateReroute:
    def test_update_waiting_at_gate_reroutes_to_immediate(self):
        """Freeze, let an update queue at the gate, reclassify to
        non-regular, unfreeze: the queued update must take the
        Immediate path (its item no longer has AV)."""
        system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)
        accel1 = system.site("site1").accelerator

        # Manually freeze everywhere and strip AV (simulating the
        # commit phase of make_non_regular around a queued update).
        for site in system.sites.values():
            site.accelerator.freeze("item0")
        proc = system.update("site1", "item0", -5)
        system.run()
        assert not proc.triggered  # parked at the gate

        for site in system.sites.values():
            site.accelerator.av_table.undefine("item0")
        for site in system.sites.values():
            site.accelerator.unfreeze("item0")
        system.run()
        assert proc.value.kind is UpdateKind.IMMEDIATE
        assert proc.value.committed
        for site in system.sites.values():
            assert site.value("item0") == 85.0


class TestLatePriority:
    def test_deadline_equal_to_rtt_favors_reply(self):
        """A request timeout exactly equal to the round trip must not
        spuriously fire (LATE-priority deadline)."""
        from repro.net import ConstantLatency, Network
        from repro.sim import RngRegistry

        env = Environment()
        net = Network(
            env,
            latency=ConstantLatency(1.0),
            rng=RngRegistry(0).stream("net.latency"),
        )
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on("ping", lambda m: "pong")

        def client(env):
            return (yield a.request("b", "ping", timeout=2.0))  # == RTT

        proc = env.process(client(env))
        env.run()
        assert proc.ok and proc.value == "pong"
