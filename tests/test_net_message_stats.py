"""Unit tests for Message, NetworkStats, and latency models."""

import numpy as np
import pytest

from repro.net import (
    ConstantLatency,
    LognormalLatency,
    Message,
    NetworkStats,
    PairwiseLatency,
    UniformLatency,
    correspondences,
)


class TestMessage:
    def test_unique_ids(self):
        a = Message("s0", "s1", "av.request")
        b = Message("s0", "s1", "av.request")
        assert a.msg_id != b.msg_id

    def test_default_tag_from_kind_prefix(self):
        assert Message("a", "b", "av.request").tag == "av"
        assert Message("a", "b", "ping").tag == "ping"

    def test_explicit_tag_kept(self):
        assert Message("a", "b", "av.request", tag="delay").tag == "delay"

    def test_is_reply(self):
        req = Message("a", "b", "x", expects_reply=True)
        rep = Message("b", "a", "x.reply", reply_to=req.msg_id)
        assert not req.is_reply and rep.is_reply

    def test_str_contains_route(self):
        m = Message("a", "b", "x")
        assert "a->b" in str(m)


class TestNetworkStats:
    def test_correspondence_is_half_messages(self):
        assert correspondences(10) == 5.0
        stats = NetworkStats()
        for _ in range(4):
            stats.record_send(Message("a", "b", "k"))
        assert stats.correspondences_total == 2.0

    def test_per_site_counts_sender_and_receiver(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"))
        assert stats.by_site["a"] == 1 and stats.by_site["b"] == 1
        assert stats.correspondences_for_site("a") == 0.5

    def test_tag_accounting(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "av.request"))
        stats.record_send(Message("b", "a", "av.request.reply", tag="av"))
        stats.record_send(Message("a", "b", "imm.lock"))
        assert stats.by_tag["av"] == 2 and stats.by_tag["imm"] == 1
        assert stats.correspondences_for_tag("av") == 1.0

    def test_snapshot_diff(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"))
        snap = stats.snapshot()
        stats.record_send(Message("a", "b", "k"))
        stats.record_send(Message("b", "a", "k"))
        delta = stats.diff(snap)
        assert delta.sent_total == 2
        assert delta.by_sender["a"] == 1 and delta.by_sender["b"] == 1
        # snapshot unchanged by later sends
        assert snap.sent_total == 1

    def test_reset(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"))
        stats.record_drop(Message("a", "b", "k"))
        stats.reset()
        assert stats.sent_total == 0 and stats.dropped_total == 0
        assert not stats.by_site

    def test_str(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "av.x"))
        assert "av=1" in str(stats)


class TestLatencyModels:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_constant(self):
        m = ConstantLatency(2.5)
        assert m.sample("a", "b", self.rng) == 2.5
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        m = UniformLatency(1.0, 2.0)
        samples = [m.sample("a", "b", self.rng) for _ in range(200)]
        assert all(1.0 <= s <= 2.0 for s in samples)
        assert max(samples) > min(samples)
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)

    def test_lognormal_positive(self):
        m = LognormalLatency(0.0, 1.0)
        assert all(m.sample("a", "b", self.rng) > 0 for _ in range(100))
        with pytest.raises(ValueError):
            LognormalLatency(0.0, -1.0)

    def test_pairwise_override_and_symmetry(self):
        m = PairwiseLatency(ConstantLatency(1.0))
        m.set("maker", "r1", ConstantLatency(5.0))
        assert m.sample("maker", "r1", self.rng) == 5.0
        assert m.sample("r1", "maker", self.rng) == 5.0  # symmetric fallback
        assert m.sample("r1", "r2", self.rng) == 1.0

    def test_pairwise_asymmetric(self):
        m = PairwiseLatency(ConstantLatency(1.0), symmetric=False)
        m.set("a", "b", ConstantLatency(9.0))
        assert m.sample("a", "b", self.rng) == 9.0
        assert m.sample("b", "a", self.rng) == 1.0


class TestNetworkStatsBytes:
    def test_send_accounts_bytes_by_pair(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"), size=100)
        stats.record_send(Message("a", "b", "k"), size=50)
        stats.record_send(Message("b", "a", "k"), size=25)
        assert stats.bytes_total == 175
        assert stats.bytes_by_pair[("a", "b")] == 150
        assert stats.bytes_by_pair[("b", "a")] == 25

    def test_dropped_bytes_counted_but_still_transmitted(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"), size=100)
        stats.record_drop(Message("a", "b", "k"), size=100)
        assert stats.bytes_total == 100  # wire bytes were spent
        assert stats.bytes_dropped == 100  # ... but never arrived

    def test_drop_without_size_model_keeps_zero_bytes(self):
        stats = NetworkStats()
        stats.record_drop(Message("a", "b", "k"))
        assert stats.bytes_dropped == 0 and stats.dropped_total == 1

    def test_snapshot_diff_reset_cover_new_fields(self):
        stats = NetworkStats()
        stats.record_send(Message("a", "b", "k"), size=10)
        snap = stats.snapshot()
        stats.record_send(Message("a", "b", "k"), size=30)
        stats.record_drop(Message("a", "b", "k"), size=30)
        delta = stats.diff(snap)
        assert delta.bytes_by_pair[("a", "b")] == 30
        assert delta.bytes_dropped == 30
        stats.reset()
        assert stats.bytes_dropped == 0 and not stats.bytes_by_pair
