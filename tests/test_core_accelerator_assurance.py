"""Unit tests for the accelerator facade and assurance metrics."""

import pytest

from repro.cluster import build_paper_system
from repro.core import (
    UpdateKind,
    UpdateOutcome,
    assurance_report,
    jain_index,
    max_spread,
)


class TestAccelerator:
    def test_check_routes_by_av_definition(self):
        system = build_paper_system(
            n_items=4, initial_stock=50.0, regular_fraction=0.5
        )
        accel = system.site("site1").accelerator
        assert accel.check("item0") is UpdateKind.DELAY
        assert accel.check("item3") is UpdateKind.IMMEDIATE

    def test_update_counter(self):
        system = build_paper_system(n_items=1, initial_stock=50.0)
        system.update("site1", "item0", -1)
        system.update("site1", "item0", -1)
        system.run()
        assert system.site("site1").accelerator.updates_started == 2

    def test_live_peers_excludes_crashed(self):
        system = build_paper_system(n_items=1, initial_stock=50.0)
        accel = system.site("site1").accelerator
        assert accel.live_peers() == ["site0", "site2"]
        system.network.faults.crash("site0")
        assert accel.live_peers() == ["site2"]

    def test_failed_update_when_site_crashes_midway(self):
        system = build_paper_system(
            n_items=1, initial_stock=90.0, latency_mean=5.0, request_timeout=3.0
        )
        # site1 needs a transfer (AV 30 < 45); crash it mid-request. The
        # in-flight ask times out, and the retry attempt fails loudly
        # because the site itself is dead.
        proc = system.update("site1", "item0", -45)

        def crasher(env):
            yield env.timeout(1)
            system.network.faults.crash("site1")

        system.env.process(crasher(system.env))
        system.run()
        assert proc.ok
        assert proc.value.outcome is UpdateOutcome.FAILED

    def test_update_hangs_without_timeout_when_crashed_midflight(self):
        """Without a request timeout a crashed requester never resolves.

        This documents why fault experiments must set request_timeout.
        """
        system = build_paper_system(
            n_items=1, initial_stock=90.0, latency_mean=5.0
        )
        proc = system.update("site1", "item0", -45)

        def crasher(env):
            yield env.timeout(1)
            system.network.faults.crash("site1")

        system.env.process(crasher(system.env))
        system.run()
        assert not proc.triggered  # stuck forever, by design

    def test_repr(self):
        system = build_paper_system(n_items=1, initial_stock=50.0)
        assert "site1" in repr(system.site("site1").accelerator)


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_bearer(self):
        assert jain_index([9, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_and_zero_fair_by_convention(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_bounds(self):
        vals = [3, 1, 4, 1, 5]
        j = jain_index(vals)
        assert 1 / len(vals) <= j <= 1.0


class TestMaxSpread:
    def test_equal_values(self):
        assert max_spread([4, 4, 4]) == 0.0

    def test_spread(self):
        assert max_spread([2, 4]) == pytest.approx(2 / 3)

    def test_empty_and_zero(self):
        assert max_spread([]) == 0.0
        assert max_spread([0, 0]) == 0.0


class TestAssuranceReport:
    def test_report_fields(self):
        rep = assurance_report(
            retailer_correspondences={"site1": 10, "site2": 11},
            delay_total=100,
            delay_local=80,
            delay_committed=95,
        )
        assert rep.retailer_fairness > 0.99
        assert rep.local_completion_ratio == 0.8
        assert rep.commit_ratio == 0.95
        assert rep.assured

    def test_not_assured_when_unfair(self):
        rep = assurance_report(
            retailer_correspondences={"site1": 100, "site2": 1},
            delay_total=10,
            delay_local=9,
            delay_committed=10,
        )
        assert not rep.assured

    def test_not_assured_when_chatty(self):
        rep = assurance_report(
            retailer_correspondences={"site1": 10, "site2": 10},
            delay_total=100,
            delay_local=10,
            delay_committed=100,
        )
        assert not rep.assured

    def test_empty_run_is_vacuously_assured(self):
        rep = assurance_report({}, 0, 0, 0)
        assert rep.assured
        assert rep.local_completion_ratio == 1.0

    def test_str(self):
        rep = assurance_report({"site1": 1}, 1, 1, 1)
        assert "fairness" in str(rep)
