"""Reliable sessions (ack/retransmit/dedup) and declarative FaultSchedule."""

import pytest

from repro.cluster import build_paper_system
from repro.net import FaultInjector, FaultSchedule, ReliabilityParams
from repro.sim.engine import Environment

PARAMS = ReliabilityParams(
    ack_timeout=2.0,
    backoff=2.0,
    jitter=0.0,
    max_attempts=2,
    probe_interval=3.0,
    lease_timeout=20.0,
)


def make_system(**kw):
    defaults = dict(
        n_items=2,
        initial_stock=100.0,
        seed=0,
        request_timeout=5.0,
        reliability=PARAMS,
    )
    defaults.update(kw)
    return build_paper_system(**defaults)


class TestReliabilityParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityParams(ack_timeout=0)
        with pytest.raises(ValueError):
            ReliabilityParams(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityParams(jitter=-1)
        with pytest.raises(ValueError):
            ReliabilityParams(max_attempts=0)
        with pytest.raises(ValueError):
            ReliabilityParams(lease_timeout=0)


class TestReliableSession:
    def test_deliver_on_clean_network(self):
        system = make_system()
        calls = []
        system.site("site0").accelerator.reliable.on(
            "test.echo", lambda msg: calls.append(msg.payload["x"]) or {"ok": 1}
        )
        sender = system.site("site1").accelerator.reliable
        proc = sender.deliver("site0", "test.echo", {"x": 7})
        system.run()
        assert proc.value is True
        assert calls == [7]
        assert sender.delivered == 1
        assert sender.retransmissions == 0

    def test_handler_runs_once_despite_random_loss(self):
        system = make_system()
        system.network.faults.set_drop_probability(0.5)
        calls = []
        system.site("site0").accelerator.reliable.on(
            "test.echo", lambda msg: calls.append(msg.payload["x"]) or {"ok": 1}
        )
        sender = system.site("site1").accelerator.reliable
        procs = [
            sender.deliver("site0", "test.echo", {"x": i}) for i in range(20)
        ]
        system.run()
        # Every delivery that reports True was applied exactly once; with
        # 50% loss and only 2 attempts some resolve to a definitive False.
        delivered = [p.value for p in procs]
        assert sorted(calls) == [
            i for i, ok in enumerate(delivered) if ok
        ]
        assert sender.retransmissions > 0

    def test_duplicate_sequence_suppressed_but_acked(self):
        system = make_system()
        calls = []
        system.site("site0").accelerator.reliable.on(
            "test.echo", lambda msg: calls.append(msg.payload["x"]) or {"ok": 1}
        )
        ep = system.site("site1").endpoint
        payload = {"x": 1, "_rel": {"seq": 99}}
        first = ep.request("site0", "test.echo", payload, timeout=5.0)
        second = ep.request("site0", "test.echo", payload, timeout=5.0)
        system.run()
        assert calls == [1]  # applied once
        assert first.value == {"ok": 1}
        assert second.value == {"dup": True}  # still acked
        assert system.site("site0").accelerator.reliable.dups_suppressed == 1

    def test_probe_gives_definitive_false_after_total_loss(self):
        system = make_system()
        faults = system.network.faults
        calls = []
        system.site("site0").accelerator.reliable.on(
            "test.echo", lambda msg: calls.append(msg) or {"ok": 1}
        )
        sender = system.site("site1").accelerator.reliable
        faults.link_down("site1", "site0")
        proc = sender.deliver("site0", "test.echo", {"x": 1})
        system.run(until=60.0)
        assert not proc.triggered  # still probing through the dead link
        faults.link_up("site1", "site0")
        system.run()
        assert proc.value is False  # definitively never arrived
        assert calls == []
        assert sender.undelivered == 1

    def test_probe_true_when_only_acks_were_lost(self):
        system = make_system()
        faults = system.network.faults
        calls = []
        system.site("site0").accelerator.reliable.on(
            "test.echo", lambda msg: calls.append(msg) or {"ok": 1}
        )
        sender = system.site("site1").accelerator.reliable
        # Forward path clean, reply path dead: the handler runs but every
        # ack is lost, so the sender must resolve via probe — whose own
        # reply comes back once the link heals.
        faults.link_down("site0", "site1")
        proc = sender.deliver("site0", "test.echo", {"x": 1})
        system.run(until=60.0)
        faults.link_up("site0", "site1")
        system.run()
        assert proc.value is True
        assert len(calls) == 1


class TestSyncWithReliability:
    """The pop-before-send loss is gone: owed clears only on ack."""

    def test_balance_retained_until_acknowledged(self):
        system = make_system()
        faults = system.network.faults
        s1 = system.site("site1")
        proc = s1.update("item0", -5)
        system.run()
        assert proc.value.committed
        accel = s1.accelerator
        assert accel.unsynced_items() == {"item0"}

        faults.link_down("site1", "site0")
        faults.link_down("site1", "site2")
        accel.sync_all()
        system.run(until=system.env.now + 10.0)
        # In flight, unresolved: the balance must still be owed.
        assert accel.unsynced_items() == {"item0"}

        faults.link_up("site1", "site0")
        faults.link_up("site1", "site2")
        system.run()
        # The probes resolved to a definitive "never arrived": the
        # balance survived for a safe resend under fresh sequence numbers.
        assert accel.unsynced_items() == {"item0"}
        accel.sync_all()
        system.run()
        assert not accel.unsynced_items()
        for name in ("site0", "site2"):
            assert system.site(name).value("item0") == s1.value("item0")

    def test_sync_converges_under_random_loss(self):
        system = make_system()
        system.network.faults.set_drop_probability(0.4)
        for delta in (-4, -3, -2):
            proc = system.site("site1").update("item0", delta)
            system.run()
            assert proc.value.committed
        for _ in range(10):
            for name in sorted(system.sites):
                system.sites[name].accelerator.sync_all()
            system.run()
            if not any(
                system.sites[name].accelerator.unsynced_items()
                for name in sorted(system.sites)
            ):
                break
        values = {system.site(n).value("item0") for n in sorted(system.sites)}
        assert values == {91.0}

    def test_concurrent_sync_calls_send_once(self):
        system = make_system()
        s1 = system.site("site1")
        proc = s1.update("item0", -5)
        system.run()
        assert proc.value.committed
        accel = s1.accelerator
        sent = accel.sync_all() + accel.sync_all()  # second call: in flight
        assert sent == accel.sync_all() + 2  # two peers, one send each
        system.run()
        assert not accel.unsynced_items()
        assert system.site("site0").accelerator.reliable.dups_suppressed == 0


class TestFaultSchedule:
    def test_steps_sorted_and_rendered(self):
        schedule = (
            FaultSchedule()
            .recover(10.0, "a")
            .crash(5.0, "a")
            .heal(20.0)
        )
        assert [s.time for s in schedule.steps] == [5.0, 10.0, 20.0]
        assert schedule.last_time == 20.0
        assert len(schedule) == 3
        assert "crash" in str(schedule.steps[0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash(-1.0, "a")

    def test_install_applies_at_scheduled_times(self):
        env = Environment()
        faults = FaultInjector()
        FaultSchedule().crash(5.0, "a").recover(10.0, "a").install(env, faults)
        env.run(until=7.0)
        assert faults.is_crashed("a")
        env.run()
        assert not faults.is_crashed("a")

    def test_recover_hook_replaces_default(self):
        env = Environment()
        faults = FaultInjector()
        recovered = []
        FaultSchedule().crash(1.0, "a").recover(2.0, "a").install(
            env, faults, on_recover=recovered.append
        )
        env.run()
        assert recovered == ["a"]
        # the hook is responsible for clearing the crash flag
        assert faults.is_crashed("a")

    def test_link_drop_override_and_clear(self):
        import numpy as np

        env = Environment()
        faults = FaultInjector(rng=np.random.default_rng(0))
        (
            FaultSchedule()
            .link_drop(1.0, "a", "b", 1.0)
            .link_drop(5.0, "a", "b", None)
            .install(env, faults)
        )
        env.run(until=2.0)
        assert faults.should_drop("a", "b")
        env.run()
        assert not faults.should_drop("a", "b")

    def test_flap_ends_link_up(self):
        env = Environment()
        faults = FaultInjector()
        FaultSchedule().flap("a", "b", 0.0, 10.0, 4.0).install(env, faults)
        env.run(until=1.0)
        assert faults.link_is_down("a", "b")
        assert faults.link_is_down("b", "a")
        env.run(until=3.0)
        assert not faults.link_is_down("a", "b")
        env.run()
        assert not faults.link_is_down("a", "b")

    def test_partition_and_heal(self):
        env = Environment()
        faults = FaultInjector()
        FaultSchedule().partition(1.0, ["a"], ["b", "c"]).heal(3.0).install(
            env, faults
        )
        env.run(until=2.0)
        assert faults.should_drop("a", "b")
        assert not faults.should_drop("b", "c")
        env.run()
        assert not faults.should_drop("a", "b")
