"""Property tests: the columnar kernel against pure-dict references.

Each table class in :mod:`repro.core.columns` claims *exact*
behavioural equality with its object twin: same return values, same
exception types at the same call, same monitor-event stream, same
``as_dict``/iteration order, same floats to the last bit. Hypothesis
drives random interleavings of the whole mutating vocabulary —
grant/deduct (``take``/``add``), hold cycles, lease-style
take-then-revert cycles, definition, drops — through both kernels in
lockstep and through a pure-dict model, and asserts the three never
disagree.

The slot machinery gets its own properties: ``reserve`` pre-sizing at
interest-slice boundaries (more items than reserved, fewer, zero),
free-list reuse after drops, and accesses to catalog items a site
never defined (unseen indices must raise, not read a neighbour's
slot).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.av_table import AVTable
from repro.core.beliefs import BeliefTable
from repro.core.columns import (
    ColumnarAVTable,
    ColumnarBeliefTable,
    ColumnarStore,
)
from repro.core.errors import AVUndefined, InsufficientAV, InvalidVolume
from repro.db.errors import DuplicateItem, NegativeValue, UnknownItem
from repro.db.storage import Store

ITEMS = ["itemA", "itemB", "itemC", "itemD", "itemE"]

#: amounts mix exact integers with repr-awkward decimals — both kernels
#: store IEEE-754 doubles, so even 0.1-style values must match bit-for-bit
amounts = st.sampled_from([0.0, 0.1, 0.5, 1.0, 2.5, 3.0, 7.7, 10.0, -1.0])


class RecordingMonitor:
    """Captures the av_event stream (the order is part of the contract)."""

    def __init__(self) -> None:
        self.events = []

    def av_event(self, table, op, item, amount, **_kwargs) -> None:
        self.events.append((op, item, repr(amount)))


def _apply(table, op, item, amount):
    """Run one op; returns ("ok", result) or ("err", exception type)."""
    try:
        if op == "define":
            return "ok", table.define(item, amount)
        if op == "add":
            return "ok", table.add(item, amount)
        if op == "take":
            return "ok", table.take(item, amount)
        if op == "take_up_to":
            return "ok", table.take_up_to(item, amount)
        if op == "take_all":
            return "ok", table.take_all(item)
        if op == "take_if_covered":
            return "ok", table.take_if_covered(item, amount)
        if op == "get":
            return "ok", table.get(item)
        if op == "hold_cycle":
            hold = table.hold(item)
            hold.add(table.take_up_to(item, amount))
            if int(amount * 2) % 2 == 0:
                hold.release()
                return "ok", 0.0
            taken = hold.amount
            hold.consume(taken)
            return "ok", taken
        if op == "lease_cycle":
            # A lease grant is a take; a lost transfer reverts with an
            # add of the same amount (see LeaseTable._revert).
            granted = table.take_up_to(item, amount)
            if int(amount) % 2 == 0:
                return "ok", table.add(item, granted) if granted else 0.0
            return "ok", granted
        if op == "debug_set":
            return "ok", table.debug_set(item, amount)
        raise AssertionError(f"unknown op {op}")
    except (AVUndefined, InsufficientAV, InvalidVolume) as exc:
        return "err", type(exc)


av_op_lists = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "define",
                "add",
                "take",
                "take_up_to",
                "take_all",
                "take_if_covered",
                "get",
                "hold_cycle",
                "lease_cycle",
                "debug_set",
            ]
        ),
        st.sampled_from(ITEMS),
        amounts,
    ),
    max_size=60,
)


@settings(deadline=None, max_examples=120)
@given(av_op_lists)
def test_av_tables_agree_on_any_interleaving(ops):
    obj, col = AVTable("s"), ColumnarAVTable("s")
    obj.monitor, col.monitor = RecordingMonitor(), RecordingMonitor()
    for op, item, amount in ops:
        if op == "define" and obj.defined(item):
            continue  # both kernels would raise the same way; not under test
        got_obj = _apply(obj, op, item, amount)
        got_col = _apply(col, op, item, amount)
        assert got_obj == got_col, (op, item, amount)
        # Full-state equality after every step, repr-exact floats.
        assert {k: repr(v) for k, v in obj.as_dict().items()} == {
            k: repr(v) for k, v in col.as_dict().items()
        }
        assert list(obj.items()) == list(col.items())
        assert repr(obj.total()) == repr(col.total())
    assert obj.monitor.events == col.monitor.events


@settings(deadline=None, max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "apply_delta", "set_value", "drop", "value"]),
            st.sampled_from(ITEMS),
            amounts,
        ),
        max_size=60,
    )
)
def test_stores_agree_on_any_interleaving(ops):
    obj, col = Store("store"), ColumnarStore("store")
    model = {}  # the pure-dict reference
    for op, item, amount in ops:
        try:
            if op == "insert":
                a = obj.insert(item, amount)
                b = col.insert(item, amount)
                model[item] = amount
            elif op == "apply_delta":
                a = obj.apply_delta(item, amount, now=1.0)
                b = col.apply_delta(item, amount, now=1.0)
                model[item] = model[item] + amount
            elif op == "set_value":
                a = obj.set_value(item, amount, now=2.0)
                b = col.set_value(item, amount, now=2.0)
                model[item] = amount
            elif op == "drop":
                a = obj.drop(item)
                b = col.drop(item)
                model.pop(item)
            else:
                a = obj.value(item)
                b = col.value(item)
        except (DuplicateItem, UnknownItem, NegativeValue) as exc:
            with pytest.raises(type(exc), match=None):
                col_exc_op = {
                    "insert": lambda: col.insert(item, amount),
                    "apply_delta": lambda: col.apply_delta(item, amount, now=1.0),
                    "set_value": lambda: col.set_value(item, amount, now=2.0),
                    "drop": lambda: col.drop(item),
                    "value": lambda: col.value(item),
                }[op]
                col_exc_op()
            continue
        assert repr(a) == repr(b), (op, item, amount)
        assert obj.as_dict() == col.as_dict() == model
        assert list(obj.item_ids()) == list(col.item_ids())
        assert obj.mutations == col.mutations
        assert repr(obj.total()) == repr(col.total())


@settings(deadline=None, max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["observe", "believed", "ranked", "forget"]),
            st.sampled_from(["p0", "p1", "p2"]),
            st.sampled_from(ITEMS[:3]),
            st.sampled_from([0.0, 1.0, 2.0, 3.5, 10.0]),  # timestamps
            amounts,
        ),
        max_size=50,
    )
)
def test_belief_tables_agree_on_any_interleaving(ops):
    obj, col = BeliefTable("s"), ColumnarBeliefTable("s")
    for op, peer, item, at, volume in ops:
        if op == "observe":
            obj.observe(peer, item, volume, at)
            col.observe(peer, item, volume, at)
        elif op == "believed":
            assert repr(obj.believed_volume(peer, item)) == repr(
                col.believed_volume(peer, item)
            )
            a, b = obj.belief(peer, item), col.belief(peer, item)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.volume, a.observed_at) == (b.volume, b.observed_at)
        elif op == "ranked":
            assert obj.ranked_peers(item, ["p0", "p1", "p2"]) == col.ranked_peers(
                item, ["p0", "p1", "p2"]
            )
        else:
            obj.forget_peer(peer)
            col.forget_peer(peer)
        assert len(obj) == len(col)
        assert obj.observations == col.observations
        assert [
            (p, i, b.volume, b.observed_at) for p, i, b in obj.entries()
        ] == [(p, i, b.volume, b.observed_at) for p, i, b in col.entries()]


# --------------------------------------------------------------------- #
# slot machinery: interest-slice boundaries, free-list, unseen indices
# --------------------------------------------------------------------- #


class TestInterestSliceBoundaries:
    @pytest.mark.parametrize("reserved", [0, 1, 3, 5, 8])
    def test_reserve_then_overflow_matches_object_kernel(self, reserved):
        # A site reserves its interest-set slice; defining more items
        # than reserved must grow seamlessly and stay order-identical.
        obj, col = AVTable("s"), ColumnarAVTable("s")
        col.reserve(reserved)
        for i, item in enumerate(ITEMS):
            obj.define(item, float(i))
            col.define(item, float(i))
        assert obj.as_dict() == col.as_dict()
        assert list(obj.items()) == list(col.items())

    def test_reserve_is_idempotent_and_never_shrinks(self):
        col = ColumnarStore("s")
        col.reserve(4)
        col.reserve(2)  # no-op: already roomier
        col.reserve(4)
        for i, item in enumerate(ITEMS):
            col.insert(item, float(i))
        assert col.as_dict() == {item: float(i) for i, item in enumerate(ITEMS)}

    def test_unseen_catalog_items_raise_not_alias(self):
        # A site that never defined an item must get the domain error —
        # never a neighbour's slot value.
        col_av = ColumnarAVTable("s")
        col_av.define("itemA", 9.0)
        with pytest.raises(AVUndefined):
            col_av.get("itemB")
        with pytest.raises(AVUndefined):
            col_av.take("itemB", 1.0)
        store = ColumnarStore("s")
        store.insert("itemA", 9.0)
        with pytest.raises(UnknownItem):
            store.value("itemB")
        with pytest.raises(UnknownItem):
            store.apply_delta("itemB", 1.0, now=0.0)

    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(ITEMS)), max_size=40
        )
    )
    def test_drop_reinsert_churn_matches_reference(self, churn):
        # Free-list reuse under arbitrary drop/insert churn: values and
        # iteration order keep matching the dict-backed store.
        obj, col = Store("s"), ColumnarStore("s")
        value = 0.0
        for insert, item in churn:
            if insert and item not in obj.item_ids():
                value += 1.0
                obj.insert(item, value)
                col.insert(item, value)
            elif not insert and item in obj.item_ids():
                obj.drop(item)
                col.drop(item)
            assert obj.as_dict() == col.as_dict()
            assert list(obj.item_ids()) == list(col.item_ids())

    def test_values_for_reads_in_request_order(self):
        col = ColumnarStore("s")
        for i, item in enumerate(ITEMS):
            col.insert(item, float(i))
        assert col.values_for(reversed(ITEMS)) == [4.0, 3.0, 2.0, 1.0, 0.0]
        with pytest.raises(UnknownItem):
            col.values_for(["itemA", "missing"])
