"""Fuzzer core: case determinism, perturbation hooks, oracles, sharding."""

import json

import pytest

from repro.perf.runner import run_sweep
from repro.perf.tasks import SweepTask, run_task
from repro.testkit import (
    FuzzCase,
    Perturbation,
    make_case,
    run_case,
    run_fuzz,
)
from repro.testkit.fuzzer import _parse_budget
from repro.testkit.schedule import CASE_FORMAT


# ---------------------------------------------------------------------- #
# case model
# ---------------------------------------------------------------------- #

def test_case_round_trips_through_json():
    case = make_case(3, 5)
    data = json.loads(json.dumps(case.to_dict()))
    assert data["format"] == CASE_FORMAT
    assert FuzzCase.from_dict(data) == case


def test_case_rejects_unknown_format():
    data = make_case(0, 0).to_dict()
    data["format"] = "something-else/9"
    with pytest.raises(ValueError, match="format"):
        FuzzCase.from_dict(data)


def test_make_case_is_pure():
    assert make_case(11, 4) == make_case(11, 4)
    assert make_case(11, 4) != make_case(11, 5)
    assert make_case(11, 4) != make_case(12, 4)


def test_case_amp_bounds_validated():
    case = make_case(0, 0)
    with pytest.raises(ValueError, match="latency_amp"):
        case.with_(latency_amp=1.5)
    with pytest.raises(ValueError, match="timer_amp"):
        case.with_(timer_amp=-0.1)


# ---------------------------------------------------------------------- #
# execution determinism
# ---------------------------------------------------------------------- #

def test_run_case_is_deterministic():
    case = make_case(0, 0)
    assert case.latency_amp > 0  # the seed-0 case exercises the hooks
    first, second = run_case(case), run_case(case)
    assert first.digest() == second.digest()
    assert first.canonical() == second.canonical()


def test_clean_protocol_has_no_findings():
    outcome = run_case(make_case(0, 1))
    assert outcome.ok
    assert outcome.fingerprint == []
    assert outcome.counters["updates_completed"] > 0


def test_perturbation_changes_the_schedule():
    base = make_case(0, 0).with_(latency_amp=0.0, timer_amp=0.0)
    jittered = base.with_(latency_amp=0.6, timer_amp=0.3)
    calm, shaken = run_case(base), run_case(jittered)
    # Different interleavings, but both runs must converge cleanly.
    assert calm.ok and shaken.ok
    assert calm.update_tags != shaken.update_tags
    assert calm.replicas == shaken.replicas


def test_perturbation_validates_amplitudes():
    with pytest.raises(ValueError):
        Perturbation(0, latency_amp=1.0)
    with pytest.raises(ValueError):
        Perturbation(0, timer_amp=-0.2)


def test_run_case_rejects_unknown_site():
    case = make_case(0, 0).with_(ops=(("site9", "item0", -5.0),))
    with pytest.raises(ValueError, match="site9"):
        run_case(case)


# ---------------------------------------------------------------------- #
# oracles
# ---------------------------------------------------------------------- #

def test_oracles_catch_planted_double_grant():
    outcome = run_case(make_case(0, 0, inject="av-double-grant"))
    assert not outcome.ok
    rules = outcome.rules
    # Caught independently by the event-time sanitizer AND the
    # end-state oracles (recomputed from live tables).
    assert "av.conservation" in rules
    assert "oracle.conservation" in rules


# ---------------------------------------------------------------------- #
# sweep integration
# ---------------------------------------------------------------------- #

def test_fuzz_task_runs_through_run_task():
    payload = run_task(
        SweepTask(index=0, experiment="fuzz", seed=0, n_updates=24)
    )
    assert payload["ok"] is True
    assert payload["case"]["seed"] != 0  # derived, not the root
    assert payload["counters"]["events_processed"] > 0


def test_fuzz_sweep_is_shard_invariant():
    def tasks():
        return [
            SweepTask(index=i, experiment="fuzz", seed=7, n_updates=24)
            for i in range(6)
        ]

    sequential = run_sweep(tasks(), shards=1)
    sharded = run_sweep(tasks(), shards=2)
    assert sequential.canonical() == sharded.canonical()


# ---------------------------------------------------------------------- #
# campaign
# ---------------------------------------------------------------------- #

def test_campaign_clean_on_correct_protocol():
    report = run_fuzz(root_seed=0, max_cases=8, n_ops=24)
    assert report.ok
    assert report.cases_run == 8
    assert report.violating is None
    assert "clean" in report.render()


def test_campaign_needs_a_bound():
    with pytest.raises(ValueError, match="budget"):
        run_fuzz(root_seed=0)


def test_parse_budget():
    assert _parse_budget(None) is None
    assert _parse_budget("10s") == 10.0
    assert _parse_budget("2m") == 120.0
    assert _parse_budget("500ms") == 0.5
    assert _parse_budget("42") == 42.0
