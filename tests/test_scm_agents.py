"""Tests for the SCM agents (maker/retailer) and the scenario runner."""

import pytest

from repro.cluster import build_paper_system
from repro.workload import MakerAgent, RetailerAgent, SCMSimulation


def make_system(**kw):
    defaults = dict(n_items=5, initial_stock=200.0, seed=2)
    defaults.update(kw)
    return build_paper_system(**defaults)


class TestRetailerAgent:
    def test_serves_customers(self):
        system = make_system()
        agent = RetailerAgent(
            system, "site1", system.rngs.stream("orders"), mean_interarrival=5.0
        )
        system.env.process(agent.run(until=500.0))
        system.run()
        assert agent.report.served > 10
        assert agent.report.revenue_units > 0
        assert agent.report.service_level > 0.5

    def test_lost_sales_on_exhaustion(self):
        system = make_system(n_items=1, initial_stock=30.0)
        agent = RetailerAgent(
            system, "site1", system.rngs.stream("orders"),
            mean_interarrival=2.0, max_quantity=10,
        )
        system.env.process(agent.run(until=400.0))
        system.run()
        assert agent.report.lost > 0  # demand far exceeds 30 units
        system.check_invariants()

    def test_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            RetailerAgent(system, "site1", system.rngs.stream("x"),
                          mean_interarrival=0)


class TestMakerAgent:
    def test_manufactures(self):
        system = make_system()
        agent = MakerAgent(system, system.rngs.stream("mfg"), interval=10.0)
        system.env.process(agent.run(until=300.0))
        system.run()
        assert agent.manufactured_units > 0
        # Minting raises the maker's AV above its bootstrap share.
        total_av = sum(
            system.av_total(item) for item in system.catalog.items()
        )
        initial_av = sum(
            p.initial_stock for p in system.catalog
        )
        assert total_av > initial_av * 0.9

    def test_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            MakerAgent(system, system.rngs.stream("x"), interval=0)


class TestSCMSimulation:
    def test_full_scenario_outcome(self):
        system = make_system(n_retailers=2, regular_fraction=0.8, n_items=10)
        sim = SCMSimulation(system, mean_interarrival=4.0, maker_interval=8.0)
        outcome = sim.run(until=800.0)
        assert outcome.total_served > 50
        assert 0.0 <= outcome.service_level <= 1.0
        assert outcome.local_ratio > 0.3
        assert set(outcome.retailer_reports) == {"site1", "site2"}
        system.check_invariants()

    def test_quiescent_after_run(self):
        """The drain pass leaves no in-flight protocol state."""
        system = make_system(regular_fraction=0.5)
        sim = SCMSimulation(system, mean_interarrival=5.0)
        sim.run(until=300.0)
        for site in system.sites.values():
            assert not site.accelerator.immediate._pending
            for item in system.catalog.non_regular_items():
                assert not site.accelerator.locks.is_locked(item)

    def test_zipf_demand(self):
        system = make_system(n_items=10)
        sim = SCMSimulation(system, mean_interarrival=3.0, zipf_skew=1.3)
        outcome = sim.run(until=400.0)
        assert outcome.total_served > 0


class TestReplenishment:
    """The paper's §1.1 loop: out-of-stock retailers order from the maker."""

    def test_replenishment_fills_backorders(self):
        system = make_system(n_items=1, initial_stock=30.0)
        agent = RetailerAgent(
            system, "site1", system.rngs.stream("orders"),
            mean_interarrival=2.0, max_quantity=10, replenish=True,
        )
        maker = MakerAgent(system, system.rngs.stream("mfg"), interval=1e9)
        system.env.process(agent.run(until=400.0))
        system.run()
        assert agent.report.replenishments_requested > 0
        assert agent.report.backorders_filled > 0
        assert maker.replenishments_served == agent.report.backorders_filled
        system.check_invariants()

    def test_replenishment_improves_service_level(self):
        def run(replenish):
            system = make_system(n_items=2, initial_stock=40.0, seed=5)
            sim = SCMSimulation(
                system, mean_interarrival=2.5, maker_interval=1e9,
                max_quantity=8, replenish=replenish,
            )
            return sim.run(until=500.0).service_level

        assert run(True) > run(False) + 0.2

    def test_no_replenishment_when_maker_crashed(self):
        system = make_system(n_items=1, initial_stock=20.0)
        MakerAgent(system, system.rngs.stream("mfg"), interval=1e9)
        agent = RetailerAgent(
            system, "site1", system.rngs.stream("orders"),
            mean_interarrival=2.0, max_quantity=10, replenish=True,
        )
        system.network.faults.crash("site0")
        system.env.process(agent.run(until=200.0))
        system.run()
        assert agent.report.replenishments_requested == 0
        assert agent.report.lost > 0

    def test_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            RetailerAgent(
                system, "site1", system.rngs.stream("x"),
                replenish=True, replenish_batch=0.5,
            )
