"""Tests for the sequence-diagram analysis module."""

import pytest

from repro.analysis import (
    SequenceRecorder,
    record_scenario,
    render_sequence,
)
from repro.cluster import build_paper_system
from repro.net import ConstantLatency, Network
from repro.sim import Environment, RngRegistry


def make_net():
    env = Environment()
    net = Network(
        env,
        latency=ConstantLatency(1.0),
        rng=RngRegistry(0).stream("net.latency"),
    )
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on("ping", lambda m: "pong")
    return env, net, a


class TestRecorder:
    def test_records_send_and_recv(self):
        env, net, a = make_net()
        recorder = SequenceRecorder(net)
        a.send("b", "ping")
        env.run()
        assert [e.event for e in recorder.events] == ["send", "recv"]
        assert recorder.events[0].msg.kind == "ping"
        assert len(recorder) == 2

    def test_records_drops(self):
        env, net, a = make_net()
        recorder = SequenceRecorder(net)
        net.faults.crash("b")
        a.send("b", "ping")
        env.run()
        assert [e.event for e in recorder.events] == ["send", "drop"]

    def test_detach_stops_recording(self):
        env, net, a = make_net()
        recorder = SequenceRecorder(net)
        a.send("b", "ping")
        recorder.detach()
        a.send("b", "ping")
        env.run()
        # only the first send (and its delivery happened after detach,
        # so just the one send event)
        assert len([e for e in recorder.events if e.event == "send"]) == 1

    def test_clear(self):
        env, net, a = make_net()
        recorder = SequenceRecorder(net)
        a.send("b", "ping")
        env.run()
        recorder.clear()
        assert len(recorder) == 0


class TestRender:
    def render_round_trip(self, **kwargs):
        env, net, a = make_net()
        recorder = SequenceRecorder(net)

        def client(env):
            return (yield a.request("b", "ping"))

        env.process(client(env))
        env.run()
        return render_sequence(recorder.events, **kwargs)

    def test_default_render(self):
        out = self.render_round_trip()
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert lines[1].count("|") == 2
        # one arrow per delivery: request + reply
        assert sum(1 for l in lines if ">" in l or "<" in l) == 2
        assert "ping" in out
        assert "t=" in out

    def test_send_rows_mode(self):
        out = self.render_round_trip(merge_delivery=False)
        arrows = [l for l in out.splitlines() if (">" in l or "<" in l)]
        assert len(arrows) == 4  # send+recv for both directions

    def test_no_time(self):
        out = self.render_round_trip(show_time=False)
        assert "t=" not in out

    def test_participant_order_respected(self):
        out = self.render_round_trip(participants=["b", "a"])
        header = out.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_unknown_participants_skipped(self):
        out = self.render_round_trip(participants=["a"])
        # messages to/from b can't be drawn with only a's column
        assert len(out.splitlines()) == 2

    def test_long_labels_truncated(self):
        env = Environment()
        net = Network(
            env,
            latency=ConstantLatency(1.0),
            rng=RngRegistry(0).stream("net.latency"),
        )
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on("averyveryveryverylongkindname", lambda m: None)
        recorder = SequenceRecorder(net)
        a.send("b", "averyveryveryverylongkindname")
        env.run()
        out = render_sequence(recorder.events, width=16)
        assert "~" in out  # truncation marker
        # all rows aligned: lifelines in the data rows match the header
        lines = out.splitlines()
        pipe_cols = [i for i, c in enumerate(lines[1]) if c == "|"]
        assert len(pipe_cols) == 2


class TestRecordScenario:
    def test_scenario_wrapper(self):
        system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)

        def scenario(env):
            result = yield system.update("site1", "item0", -45)
            assert result.committed

        out = record_scenario(system, scenario)
        assert "av.request" in out
        assert out.splitlines()[0].split() == ["site0", "site1", "site2"]

    def test_local_update_renders_empty_diagram(self):
        system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)

        def scenario(env):
            yield system.update("site1", "item0", -5)

        out = record_scenario(system, scenario)
        assert len(out.splitlines()) == 2  # header + lifelines only
