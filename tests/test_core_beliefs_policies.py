"""Unit tests for belief tables, deciding policies and selection strategies."""

import numpy as np
import pytest

from repro.core import (
    BeliefTable,
    BelievedRichestStrategy,
    ExactPolicy,
    FixedOrderStrategy,
    GrantAllPolicy,
    OverdraftPolicy,
    ProportionalPolicy,
    RandomStrategy,
    RoundRobinStrategy,
    Soda99Policy,
)


class TestBeliefTable:
    def test_observe_and_lookup(self):
        b = BeliefTable("site1")
        b.observe("site0", "A", 40.0, now=1.0)
        assert b.believed_volume("site0", "A") == 40.0
        assert b.believed_volume("site0", "B") is None
        assert b.belief("site0", "A").observed_at == 1.0

    def test_newer_observation_wins(self):
        b = BeliefTable()
        b.observe("p", "A", 40.0, now=1.0)
        b.observe("p", "A", 10.0, now=2.0)
        assert b.believed_volume("p", "A") == 10.0

    def test_stale_observation_ignored(self):
        b = BeliefTable()
        b.observe("p", "A", 10.0, now=5.0)
        b.observe("p", "A", 99.0, now=1.0)  # out-of-order arrival
        assert b.believed_volume("p", "A") == 10.0

    def test_ranked_peers_richest_first(self):
        b = BeliefTable()
        b.observe("poor", "A", 1.0, now=0)
        b.observe("rich", "A", 50.0, now=0)
        b.observe("empty", "A", 0.0, now=0)
        ranked = b.ranked_peers("A", ["poor", "rich", "empty", "unknown"])
        assert ranked[0] == "rich"
        assert ranked[1] == "poor"
        # unknown ranks above known-empty
        assert ranked.index("unknown") < ranked.index("empty")

    def test_ranked_ties_break_by_name(self):
        b = BeliefTable()
        b.observe("b", "A", 5.0, now=0)
        b.observe("a", "A", 5.0, now=0)
        assert b.ranked_peers("A", ["b", "a"]) == ["a", "b"]

    def test_forget_peer(self):
        b = BeliefTable()
        b.observe("p", "A", 1.0, now=0)
        b.observe("p", "B", 2.0, now=0)
        b.observe("q", "A", 3.0, now=0)
        b.forget_peer("p")
        assert b.believed_volume("p", "A") is None
        assert b.believed_volume("q", "A") == 3.0
        assert len(b) == 1


class TestPolicies:
    def test_soda99_requests_shortage(self):
        p = Soda99Policy()
        assert p.request_amount(17.0) == 17.0

    def test_soda99_grants_ceil_half(self):
        p = Soda99Policy()
        assert p.grant_amount(40.0, 5.0) == 20.0
        assert p.grant_amount(41.0, 5.0) == 21.0  # ceil of 20.5
        assert p.grant_amount(1.0, 5.0) == 1.0  # never livelocks at 1
        assert p.grant_amount(0.0, 5.0) == 0.0

    def test_soda99_fractional_half(self):
        assert Soda99Policy().grant_amount(5.5, 1.0) == 2.75

    def test_grant_all(self):
        p = GrantAllPolicy()
        assert p.grant_amount(40.0, 5.0) == 40.0
        assert p.request_amount(3.0) == 3.0

    def test_exact(self):
        p = ExactPolicy()
        assert p.grant_amount(40.0, 5.0) == 5.0
        assert p.grant_amount(3.0, 5.0) == 3.0

    def test_proportional_validation_and_grant(self):
        with pytest.raises(ValueError):
            ProportionalPolicy(0.0)
        with pytest.raises(ValueError):
            ProportionalPolicy(1.5)
        p = ProportionalPolicy(0.25)
        assert p.grant_amount(40.0, 5.0) == 10.0
        assert p.grant_amount(1.0, 5.0) == 1.0  # ceil keeps integers moving

    def test_overdraft_requests_more(self):
        with pytest.raises(ValueError):
            OverdraftPolicy(0.5)
        p = OverdraftPolicy(2.0)
        assert p.request_amount(5.0) == 10.0
        assert p.grant_amount(40.0, 10.0) >= 10.0

    def test_grants_never_exceed_available(self):
        for policy in (
            Soda99Policy(),
            GrantAllPolicy(),
            ExactPolicy(),
            ProportionalPolicy(0.9),
            OverdraftPolicy(3.0),
        ):
            for avail in (0.0, 1.0, 7.0, 100.0):
                for req in (0.0, 1.0, 50.0, 1000.0):
                    g = policy.grant_amount(avail, req)
                    assert 0.0 <= g <= avail, (policy, avail, req, g)


class TestStrategies:
    def setup_method(self):
        self.beliefs = BeliefTable()
        self.beliefs.observe("s0", "A", 50.0, now=0)
        self.beliefs.observe("s2", "A", 5.0, now=0)
        self.candidates = ["s0", "s2", "s3"]

    def test_believed_richest(self):
        s = BelievedRichestStrategy()
        assert s.select("A", self.candidates, frozenset(), self.beliefs) == "s0"
        assert (
            s.select("A", self.candidates, frozenset({"s0"}), self.beliefs) == "s2"
        )
        assert (
            s.select("A", self.candidates, frozenset(self.candidates), self.beliefs)
            is None
        )

    def test_round_robin_cycles(self):
        s = RoundRobinStrategy()
        first = s.select("A", self.candidates, frozenset(), self.beliefs)
        second = s.select("A", self.candidates, frozenset(), self.beliefs)
        third = s.select("A", self.candidates, frozenset(), self.beliefs)
        fourth = s.select("A", self.candidates, frozenset(), self.beliefs)
        assert [first, second, third] == self.candidates
        assert fourth == first

    def test_round_robin_skips_tried(self):
        s = RoundRobinStrategy()
        got = s.select("A", self.candidates, frozenset({"s0"}), self.beliefs)
        assert got == "s2"

    def test_random_deterministic_with_seed(self):
        a = RandomStrategy(np.random.default_rng(1))
        b = RandomStrategy(np.random.default_rng(1))
        picks_a = [a.select("A", self.candidates, frozenset(), self.beliefs) for _ in range(10)]
        picks_b = [b.select("A", self.candidates, frozenset(), self.beliefs) for _ in range(10)]
        assert picks_a == picks_b
        assert set(picks_a) <= set(self.candidates)

    def test_random_never_returns_tried(self):
        s = RandomStrategy(np.random.default_rng(0))
        for _ in range(20):
            got = s.select("A", self.candidates, frozenset({"s0", "s2"}), self.beliefs)
            assert got == "s3"
        assert s.select("A", self.candidates, frozenset(self.candidates), self.beliefs) is None

    def test_fixed_order(self):
        s = FixedOrderStrategy(["s2", "s0"])
        assert s.select("A", self.candidates, frozenset(), self.beliefs) == "s2"
        assert s.select("A", self.candidates, frozenset({"s2"}), self.beliefs) == "s0"
        # candidates not in the configured order come last
        assert (
            s.select("A", self.candidates, frozenset({"s2", "s0"}), self.beliefs)
            == "s3"
        )
