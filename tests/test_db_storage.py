"""Unit tests for Store and Record."""

import pytest

from repro.db import DuplicateItem, NegativeValue, Record, Store, UnknownItem


class TestRecord:
    def test_apply_bumps_version_and_time(self):
        rec = Record("A", 10)
        assert rec.apply(5, now=3.0) == 15
        assert rec.version == 1 and rec.updated_at == 3.0

    def test_set_overwrites(self):
        rec = Record("A", 10)
        rec.set(99, now=1.0)
        assert rec.value == 99 and rec.version == 1

    def test_copy_is_independent(self):
        rec = Record("A", 10)
        dup = rec.copy()
        rec.apply(1)
        assert dup.value == 10 and dup.version == 0

    def test_str(self):
        assert str(Record("A", 10)) == "A=10 (v0)"


class TestStore:
    def test_insert_and_value(self):
        s = Store("s0")
        s.insert("A", 100)
        assert s.value("A") == 100
        assert "A" in s and len(s) == 1

    def test_duplicate_insert_rejected(self):
        s = Store()
        s.insert("A", 1)
        with pytest.raises(DuplicateItem):
            s.insert("A", 2)

    def test_unknown_item(self):
        s = Store()
        with pytest.raises(UnknownItem):
            s.value("ghost")
        with pytest.raises(UnknownItem):
            s.apply_delta("ghost", 1)
        with pytest.raises(UnknownItem):
            s.drop("ghost")

    def test_apply_delta(self):
        s = Store()
        s.insert("A", 100)
        assert s.apply_delta("A", -30, now=2.0) == 70
        assert s.record("A").version == 1
        assert s.mutations == 1

    def test_negative_guard(self):
        s = Store()
        s.insert("A", 10)
        with pytest.raises(NegativeValue):
            s.apply_delta("A", -11)
        assert s.value("A") == 10  # unchanged

    def test_negative_insert_guard(self):
        with pytest.raises(NegativeValue):
            Store().insert("A", -5)

    def test_allow_negative_mode(self):
        s = Store(allow_negative=True)
        s.insert("A", 0)
        assert s.apply_delta("A", -5) == -5

    def test_set_value_guard(self):
        s = Store()
        s.insert("A", 10)
        with pytest.raises(NegativeValue):
            s.set_value("A", -1)
        s.set_value("A", 50)
        assert s.value("A") == 50

    def test_items_order_and_as_dict(self):
        s = Store()
        s.insert("B", 2)
        s.insert("A", 1)
        assert list(s.items()) == [("B", 2), ("A", 1)]
        assert s.as_dict() == {"B": 2, "A": 1}

    def test_total(self):
        s = Store()
        s.insert("A", 10)
        s.insert("B", 32)
        assert s.total() == 42

    def test_drop(self):
        s = Store()
        s.insert("A", 1)
        s.drop("A")
        assert "A" not in s
